"""Tests for the search drivers on closed-form synthetic objectives."""

from __future__ import annotations

import pytest

from repro.explore.search import (
    INVALID_SCORE,
    algorithm_names,
    drive,
    make_algorithm,
)
from repro.explore.space import ExploreError, ParamSpace, int_range


def _space_4x4() -> ParamSpace:
    return ParamSpace(
        [int_range("deli_ways", 2, 8, step=2),
         int_range("max_selected_pcs", 4, 16, step=4)],
        num_cores=2,
    )


def _big_space() -> ParamSpace:
    return ParamSpace(
        [int_range("deli_ways", 1, 15), int_range("max_selected_pcs", 1, 32)],
        num_cores=2,
    )


def _bowl(space: ParamSpace, optimum=(2, 1)):
    """Smooth unimodal scorer with a unique known maximum at ``optimum``."""
    def scorer(point):
        ix = space.indices(point)
        return -sum((a - b) ** 2 for a, b in zip(ix, optimum))
    return scorer


class TestAlgorithmRegistry:
    def test_known_names(self):
        assert algorithm_names() == ["ga", "grid", "hill", "random"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ExploreError, match="unknown search algorithm"):
            make_algorithm("anneal", _space_4x4(), 1)


class TestFindsKnownOptimum:
    """Every algorithm finds the closed-form optimum within budget.

    Each algorithm only ever proposes not-yet-evaluated points, so a
    budget of ``space.size`` is exhaustive for all of them — the probe
    *order* differs, the coverage does not.
    """

    @pytest.mark.parametrize("name", ["random", "grid", "hill", "ga"])
    def test_exhaustive_budget_finds_optimum(self, name):
        space = _space_4x4()
        algo = make_algorithm(name, space, seed=7)
        history = drive(algo, _bowl(space), budget=space.size)
        assert len(history) == space.size
        best_point, best_score = max(history, key=lambda item: item[1])
        assert best_score == 0
        assert space.indices(best_point) == (2, 1)
        assert algo.best == ((2, 1), 0)

    @pytest.mark.parametrize("name", ["random", "grid", "hill", "ga"])
    def test_no_point_proposed_twice(self, name):
        space = _space_4x4()
        history = drive(
            make_algorithm(name, space, seed=3), _bowl(space), budget=space.size
        )
        seen = [space.indices(point) for point, _score in history]
        assert len(set(seen)) == len(seen) == space.size

    def test_hill_climb_converges_faster_than_exhaustive(self):
        # On a smooth bowl the climber needs far fewer probes than the
        # full grid to reach the optimum.
        space = _space_4x4()
        algo = make_algorithm("hill", space, seed=7)
        history = drive(algo, _bowl(space), budget=10)
        assert any(score == 0 for _point, score in history)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["random", "hill", "ga"])
    def test_same_seed_same_trajectory(self, name):
        space = _big_space()
        runs = [
            [
                space.indices(point)
                for point, _s in drive(
                    make_algorithm(name, space, seed=11), _bowl(space, (10, 24)), 24
                )
            ]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_different_seeds_different_random_trajectories(self):
        space = _big_space()
        a = [space.indices(p) for p, _s in
             drive(make_algorithm("random", space, 1), _bowl(space), 24)]
        b = [space.indices(p) for p, _s in
             drive(make_algorithm("random", space, 2), _bowl(space), 24)]
        assert a != b

    def test_observe_in_any_order_same_proposals(self):
        # propose() depends on the set of observations, not on the order
        # the evaluation layer resolved them in (the --jobs invariance).
        space = _big_space()
        scorer = _bowl(space, (10, 24))
        trajectories = []
        for reverse in (False, True):
            algo = make_algorithm("hill", space, seed=5)
            seen = []
            while len(seen) < 24:
                batch = algo.propose(24 - len(seen))
                if not batch:
                    break
                scored = [(p, scorer(p)) for p in batch]
                algo.observe(list(reversed(scored)) if reverse else scored)
                seen.extend(space.indices(p) for p in batch)
            trajectories.append(seen)
        assert trajectories[0] == trajectories[1]


class TestSearchBeatsRandom:
    """Structured searches beat random sampling where structure exists.

    Deterministic pinned-seed comparisons: the algorithms and the seeds
    are fixed, so these are regression tests, not statistical claims.
    """

    BUDGET = 60
    SEEDS = range(1, 9)

    def test_hill_beats_random_on_ridge(self):
        space = _big_space()

        def ridge(point):
            ix = space.indices(point)
            return -(abs(ix[0] - 10) + abs(ix[1] - 24))

        def best(name, seed):
            return max(
                s for _p, s in drive(make_algorithm(name, space, seed), ridge, self.BUDGET)
            )

        hill = sum(best("hill", seed) for seed in self.SEEDS)
        random = sum(best("random", seed) for seed in self.SEEDS)
        assert hill > random

    def test_ga_beats_random_on_deceptive_landscape(self):
        # Separable and deceptive: each gene has a large bonus at its
        # target but the local gradient points *away* from it.  Crossover
        # assembles the two building blocks; uniform sampling must hit
        # both targets in one draw.
        space = _big_space()

        def deceptive(point):
            ix = space.indices(point)
            score = 0.0
            for gene, target in zip(ix, (12, 28)):
                score += 40.0 if gene == target else -float(gene)
            return score

        def best(name, seed):
            return max(
                s for _p, s in
                drive(make_algorithm(name, space, seed), deceptive, self.BUDGET)
            )

        ga = sum(best("ga", seed) for seed in self.SEEDS)
        random = sum(best("random", seed) for seed in self.SEEDS)
        assert ga > random


class TestInvalidScores:
    def test_invalid_score_never_becomes_best(self):
        space = _space_4x4()
        algo = make_algorithm("random", space, seed=1)
        batch = algo.propose(4)
        algo.observe([(p, INVALID_SCORE) for p in batch])
        assert algo.best is None
        batch2 = algo.propose(4)
        algo.observe([(p, 1.0) for p in batch2])
        best_ix, best_score = algo.best
        assert best_score == 1.0
        assert best_ix in {space.indices(p) for p in batch2}

    def test_exhaustion_returns_empty(self):
        space = _space_4x4()
        algo = make_algorithm("random", space, seed=1)
        drive(algo, lambda p: 0.0, budget=space.size)
        assert algo.propose(8) == []
