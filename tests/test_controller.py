"""Tests for the NUcache epoch controller."""

from __future__ import annotations

from repro.common.config import NUcacheConfig
from repro.nucache.controller import WARMUP_FRACTION, NUcacheController


def _controller(**overrides):
    defaults = dict(
        deli_ways=2,
        num_candidate_pcs=4,
        epoch_misses=100,
        history_capacity=64,
        max_selected_pcs=2,
    )
    defaults.update(overrides)
    return NUcacheController(NUcacheConfig(**defaults), deli_capacity=32)


def _feed_miss(controller, key):
    """One miss plus its access tick; returns True at the boundary."""
    controller.note_miss(*key)
    return controller.note_access()


def _drive_epoch(controller, key=(0, 0x10), count=None):
    """Feed misses until the epoch boundary, then rotate."""
    remapped = {}

    def remap(table):
        remapped.clear()
        remapped.update(table)

    fed = 0
    while True:
        fed += 1
        if _feed_miss(controller, key):
            break
        if count is not None and fed >= count:
            break
    controller.rotate(remap)
    return remapped


class TestEpochProtocol:
    def test_first_epoch_is_short(self):
        controller = _controller()
        target = int(100 * WARMUP_FRACTION)
        for _ in range(target - 1):
            assert not _feed_miss(controller, (0, 1))
        assert _feed_miss(controller, (0, 1))

    def test_third_epoch_is_full_length(self):
        controller = _controller()
        _drive_epoch(controller)
        _drive_epoch(controller)
        # Now full length: 100 misses needed.
        for _ in range(99):
            assert not _feed_miss(controller, (0, 1))
        assert _feed_miss(controller, (0, 1))

    def test_candidates_learned_from_misses(self):
        controller = _controller()
        for _ in range(10):
            _feed_miss(controller, (0, 0xAA))
        while not _feed_miss(controller, (0, 0xBB)):
            pass
        controller.rotate(lambda table: None)
        assert controller.slot_of(0, 0xAA) >= 0
        assert controller.slot_of(0, 0xBB) >= 0
        assert controller.slot_of(0, 0xCC) == -1

    def test_candidate_table_bounded(self):
        controller = _controller(num_candidate_pcs=4)
        count = 0
        done = False
        while not done:
            done = _feed_miss(controller, (0, count))
            count += 1
        controller.rotate(lambda table: None)
        slots = [controller.slot_of(0, pc) for pc in range(count)]
        assert sum(1 for slot in slots if slot >= 0) <= 4

    def test_remap_receives_new_table(self):
        controller = _controller()
        table = _drive_epoch(controller, key=(0, 0x77))
        assert (0, 0x77) in table

    def test_miss_counts_reset_each_epoch(self):
        controller = _controller()
        _drive_epoch(controller, key=(0, 1))
        # Next epoch driven by a different PC; old PC should fade once
        # it stops missing and is not selected.
        _drive_epoch(controller, key=(0, 2))
        _drive_epoch(controller, key=(0, 2))
        assert controller.slot_of(0, 2) >= 0


class TestSelection:
    def _push_capturable_traffic(self, controller, key, blocks):
        """One epoch of misses where key's lines are quickly reused."""
        done = False
        block = 0
        while not done:
            done = _feed_miss(controller, key)
            slot = controller.slot_of(*key)
            if slot >= 0:
                addr = blocks + (block % 8)
                controller.on_main_eviction(0, addr, slot)
                controller.on_possible_reuse(0, addr)
            block += 1

    def test_selects_capturable_pc(self):
        controller = _controller()
        _drive_epoch(controller, key=(0, 0x10))  # learn candidate
        self._push_capturable_traffic(controller, (0, 0x10), blocks=1000)
        controller.rotate(lambda table: None)
        assert controller.is_selected(controller.slot_of(0, 0x10))
        assert (0, 0x10) in controller.selected_keys()

    def test_nothing_selected_without_events(self):
        controller = _controller()
        _drive_epoch(controller)
        _drive_epoch(controller)
        assert controller.selected_slots == frozenset()

    def test_selected_pc_kept_in_candidate_table(self):
        controller = _controller(num_candidate_pcs=2)
        _drive_epoch(controller, key=(0, 0x10))
        self._push_capturable_traffic(controller, (0, 0x10), blocks=1000)
        controller.rotate(lambda table: None)
        assert controller.is_selected(controller.slot_of(0, 0x10))
        # A flood of misses from other PCs must not push the selected PC
        # out of the table.
        done = False
        pc = 0x100
        while not done:
            done = _feed_miss(controller, (0, pc))
            pc += 1
        controller.rotate(lambda table: None)
        assert controller.slot_of(0, 0x10) >= 0

    def test_hysteresis_keeps_near_tied_selection(self):
        controller = _controller()
        _drive_epoch(controller, key=(0, 0x10))
        self._push_capturable_traffic(controller, (0, 0x10), blocks=1000)
        controller.rotate(lambda table: None)
        first = set(controller.selected_keys())
        # Same traffic pattern again: selection must not churn.
        self._push_capturable_traffic(controller, (0, 0x10), blocks=1000)
        controller.rotate(lambda table: None)
        assert set(controller.selected_keys()) == first

    def test_profile_history_disabled_by_default(self):
        controller = _controller()
        _drive_epoch(controller)
        assert controller.profile_history == []

    def test_profile_history_collected_when_enabled(self):
        controller = _controller()
        controller.keep_profiles = True
        _drive_epoch(controller)
        _drive_epoch(controller)
        assert len(controller.profile_history) == 2
