"""Tests for the differential reference-model oracle (repro.check.oracle)."""

from __future__ import annotations

import pytest

from repro.check import fuzz
from repro.check.oracle import DifferentialHarness, make_reference
from repro.common.errors import InvariantViolation, ReproError
from repro.sim.policies import make_llc

#: The satellite-required policy families: every shipped family with a
#: reference model, one representative per optimization-relevant path.
FAMILIES = ("lru", "dip", "srrip", "ship", "sdbp", "nucache", "nucache-ucp")


def _replay(case, **kwargs):
    return fuzz.replay_stream(case, fuzz.generate_stream(case), **kwargs)


class TestLockstep:
    @pytest.mark.parametrize("policy", FAMILIES)
    def test_kernel_matches_reference(self, policy):
        case = fuzz.FuzzCase(policy=policy, accesses=1500)
        assert _replay(case) is None

    @pytest.mark.parametrize("policy", ("nucache", "nucache-ucp"))
    @pytest.mark.parametrize("deli_ways", (1, 4))
    def test_nucache_splits(self, policy, deli_ways):
        case = fuzz.FuzzCase(policy=policy, deli_ways=deli_ways, accesses=1200)
        assert _replay(case) is None

    def test_single_core_geometry_variant(self):
        case = fuzz.FuzzCase(policy="nucache", sets=8, ways=8, cores=1,
                             accesses=1200)
        assert _replay(case) is None


class TestDivergenceDetection:
    def test_fifo_corruption_is_caught(self):
        """Regression: an injected DeliWay-FIFO corruption must be caught."""

        def swap_fifo(llc):
            for nu_set in llc.sets:
                if len(nu_set.deli) >= 2:
                    entries = list(nu_set.deli.values())
                    entries[0].seq, entries[1].seq = entries[1].seq, entries[0].seq
                    return
            raise AssertionError("no set with two DeliWay lines to corrupt")

        case = fuzz.FuzzCase(policy="nucache", accesses=2000)
        outcome = _replay(case, corrupt_after=1500, corruptor=swap_fifo)
        assert outcome is not None
        violation, index = outcome
        assert index >= 1500
        assert any("FIFO order broken" in v for v in violation.violations)

    def test_recency_corruption_only_oracle_can_see(self):
        """A stack rotation keeps the permutation valid (sanitizer-clean)
        but diverges from the reference's recency order."""

        def rotate_stack(llc):
            for cache_set in llc.sets:
                stack = cache_set.policy.stack
                if len(cache_set._tag_to_way) >= 2:
                    stack.append(stack.pop(0))
                    return
            raise AssertionError("no populated set to corrupt")

        case = fuzz.FuzzCase(policy="lru", accesses=1000)
        outcome = _replay(case, corrupt_after=500, corruptor=rotate_stack)
        assert outcome is not None
        violation, _ = outcome
        assert any("diverged" in v for v in violation.violations)

    def test_counter_tamper_is_caught_without_sanitizer(self):
        case = fuzz.FuzzCase(policy="lru", accesses=50)
        harness = fuzz.build_harness(case)
        harness.sanitize = False  # isolate the oracle's counter diff
        stream = fuzz.generate_stream(case)
        for block_addr, core, pc, is_write in stream[:-1]:
            harness.access(block_addr, core, pc, is_write)
        harness.kernel.stats.total.hits += 1
        block_addr, core, pc, is_write = stream[-1]
        with pytest.raises(InvariantViolation) as info:
            harness.access(block_addr, core, pc, is_write)
        assert any("counter hits diverged" in v for v in info.value.violations)

    def test_violation_snapshot_carries_both_views(self):
        case = fuzz.FuzzCase(policy="nucache", accesses=800)
        outcome = _replay(case, corrupt_after=700)
        assert outcome is not None
        violation, _ = outcome
        assert "reference" in violation.snapshot
        assert "access" in violation.snapshot


class TestMakeReference:
    def test_every_family_resolves(self):
        case = fuzz.FuzzCase(policy="lru")
        config = fuzz.system_config(case)
        for policy in FAMILIES + fuzz.EXTRA_POLICIES:
            assert make_reference(policy, config, seed=case.seed) is not None

    def test_structural_baselines_have_no_reference(self):
        case = fuzz.FuzzCase(policy="ucp")
        config = fuzz.system_config(case)
        with pytest.raises(ReproError, match="no differential reference"):
            make_reference("ucp", config)

    def test_harness_reports_hits_like_the_kernel(self):
        case = fuzz.FuzzCase(policy="lru", accesses=300)
        harness = fuzz.build_harness(case)
        shadow = make_llc("lru", fuzz.system_config(case), seed=case.seed)
        for block_addr, core, pc, is_write in fuzz.generate_stream(case):
            assert harness.access(block_addr, core, pc, is_write) == shadow.access(
                block_addr, core, pc, is_write
            )


class TestHarnessConstruction:
    def test_build_harness_pairs_kernel_and_reference(self):
        harness = fuzz.build_harness(fuzz.FuzzCase(policy="nucache"))
        assert isinstance(harness, DifferentialHarness)
        assert harness.kernel.name != ""
        assert harness.reference.deli_ways == 2
