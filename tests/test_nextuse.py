"""Tests for the Next-Use profiler and epoch profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nucache.nextuse import EpochProfile, NextUseEvent, NextUseProfiler


def _profiler(capacity=16, sample_period=1, slots=4):
    profiler = NextUseProfiler(capacity, sample_period)
    profiler.begin_epoch(slots)
    return profiler


class TestNextUseProfiler:
    def test_reuse_records_event(self):
        profiler = _profiler()
        profiler.on_eviction(0, block_addr=100, pc_slot=1)
        event = profiler.on_reuse(0, block_addr=100)
        assert event is not None
        assert event.pc_slot == 1
        assert event.deltas == (0, 0, 0, 0)

    def test_distance_counts_candidate_evictions(self):
        profiler = _profiler()
        profiler.on_eviction(0, 100, pc_slot=0)
        profiler.on_eviction(0, 101, pc_slot=1)
        profiler.on_eviction(0, 102, pc_slot=1)
        profiler.on_eviction(0, 103, pc_slot=2)
        event = profiler.on_reuse(0, 100)
        assert event.deltas == (0, 2, 1, 0)

    def test_own_eviction_not_counted(self):
        profiler = _profiler()
        profiler.on_eviction(0, 100, pc_slot=2)
        event = profiler.on_reuse(0, 100)
        assert event.deltas[2] == 0

    def test_unknown_block_returns_none(self):
        profiler = _profiler()
        assert profiler.on_reuse(0, 999) is None

    def test_reuse_consumes_entry(self):
        profiler = _profiler()
        profiler.on_eviction(0, 100, pc_slot=0)
        assert profiler.on_reuse(0, 100) is not None
        assert profiler.on_reuse(0, 100) is None

    def test_non_candidate_evictions_invisible(self):
        profiler = _profiler()
        profiler.on_eviction(0, 100, pc_slot=-1)
        assert profiler.on_reuse(0, 100) is None
        assert profiler.pending_evictions == 0

    def test_history_capacity_evicts_oldest(self):
        profiler = _profiler(capacity=2)
        profiler.on_eviction(0, 100, pc_slot=0)
        profiler.on_eviction(0, 101, pc_slot=0)
        profiler.on_eviction(0, 102, pc_slot=0)
        assert profiler.on_reuse(0, 100) is None  # fell off the FIFO
        assert profiler.on_reuse(0, 102) is not None

    def test_re_eviction_refreshes_entry(self):
        profiler = _profiler(capacity=2)
        profiler.on_eviction(0, 100, pc_slot=0)
        profiler.on_eviction(0, 101, pc_slot=0)
        profiler.on_eviction(0, 100, pc_slot=1)  # refreshed, newest
        profiler.on_eviction(0, 102, pc_slot=0)  # pushes out 101
        assert profiler.on_reuse(0, 101) is None
        event = profiler.on_reuse(0, 100)
        assert event is not None
        assert event.pc_slot == 1

    def test_sampling_ignores_unsampled_sets(self):
        profiler = _profiler(sample_period=4)
        profiler.on_eviction(1, 100, pc_slot=0)  # set 1: unsampled
        assert profiler.on_reuse(1, 100) is None
        profiler.on_eviction(4, 200, pc_slot=0)  # set 4: sampled
        assert profiler.on_reuse(4, 200) is not None

    def test_begin_epoch_resets(self):
        profiler = _profiler()
        profiler.on_eviction(0, 100, pc_slot=0)
        profiler.begin_epoch(4)
        assert profiler.on_reuse(0, 100) is None
        assert profiler.finish_epoch().num_events == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            NextUseProfiler(0)
        with pytest.raises(ValueError):
            NextUseProfiler(4, sample_period=0)


class TestEpochProfile:
    def _profile(self, events, slots=3, evictions=None, sample_period=1):
        return EpochProfile(
            slots,
            [NextUseEvent(pc, tuple(deltas)) for pc, deltas in events],
            evictions or [0] * slots,
            sample_period,
        )

    def test_captured_hits_within_capacity(self):
        profile = self._profile([(0, (5, 0, 0)), (0, (20, 0, 0))])
        mask = np.array([True, False, False])
        assert profile.captured_hits(mask, deli_capacity=10) == 1
        assert profile.captured_hits(mask, deli_capacity=30) == 2

    def test_only_selected_pcs_counted(self):
        profile = self._profile([(0, (0, 0, 0)), (1, (0, 0, 0))])
        mask = np.array([True, False, False])
        assert profile.captured_hits(mask, deli_capacity=10) == 1

    def test_distance_restricted_to_selected(self):
        # Distance vs slot 0 alone is 5; including slot 1 it is 50.
        profile = self._profile([(0, (5, 45, 0))])
        only_zero = np.array([True, False, False])
        both = np.array([True, True, False])
        assert profile.captured_hits(only_zero, 10) == 1
        assert profile.captured_hits(both, 10) == 0

    def test_empty_profile(self):
        profile = self._profile([])
        assert profile.num_events == 0
        assert profile.captured_hits(np.array([True, True, True]), 100) == 0

    def test_sampled_capacity_scaling(self):
        profile = self._profile([(0, (5, 0, 0))], sample_period=4)
        mask = np.array([True, False, False])
        # Effective capacity 16//4 = 4 < 5: not captured.
        assert profile.captured_hits(mask, deli_capacity=16) == 0
        assert profile.captured_hits(mask, deli_capacity=24) == 1

    def test_subsampling_scales_counts(self):
        events = [(0, (0, 0, 0))] * 100
        profile = EpochProfile(
            3,
            [NextUseEvent(pc, deltas) for pc, deltas in events],
            [0, 0, 0],
            1,
            max_selection_events=10,
        )
        mask = np.array([True, False, False])
        estimate = profile.captured_hits(mask, 10)
        assert 80 <= estimate <= 120  # 100 +- stride granularity

    def test_rejects_bad_max_events(self):
        with pytest.raises(ValueError):
            EpochProfile(1, [], [0], 1, max_selection_events=0)

    def test_distance_histogram(self):
        profile = self._profile(
            [(0, (1, 0, 0)), (0, (10, 0, 0)), (1, (100, 0, 0))]
        )
        histograms = profile.distance_histogram([5, 50])
        assert histograms[0].tolist() == [1, 1, 0]
        assert histograms[1].tolist() == [0, 0, 1]
