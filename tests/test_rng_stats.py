"""Tests for repro.common.rng and repro.common.stats."""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.common.stats import AccessStats, SharedCacheStats


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_label_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_63_bits(self):
        for label in ("x", "y", "a-long-label"):
            assert 0 <= derive_seed(DEFAULT_SEED, label) < 2**63


class TestMakeRng:
    def test_repeatable_streams(self):
        a = make_rng(7, "stream").integers(0, 1000, size=10)
        b = make_rng(7, "stream").integers(0, 1000, size=10)
        assert (a == b).all()

    def test_independent_streams(self):
        a = make_rng(7, "one").integers(0, 1000, size=10)
        b = make_rng(7, "two").integers(0, 1000, size=10)
        assert not (a == b).all()


class TestAccessStats:
    def test_rates(self):
        stats = AccessStats(hits=3, misses=1)
        assert stats.accesses == 4
        assert stats.hit_rate == 0.75
        assert stats.miss_rate == 0.25

    def test_empty_rates(self):
        stats = AccessStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_merge(self):
        a = AccessStats(hits=1, misses=2, writebacks=3, evictions=4)
        b = AccessStats(hits=10, misses=20, writebacks=30, evictions=40)
        a.merge(b)
        assert (a.hits, a.misses, a.writebacks, a.evictions) == (11, 22, 33, 44)

    def test_snapshot_is_independent(self):
        stats = AccessStats(hits=1)
        snap = stats.snapshot()
        stats.hits += 5
        assert snap.hits == 1


class TestSharedCacheStats:
    def test_record_splits_by_core(self):
        stats = SharedCacheStats()
        stats.record(0, hit=True)
        stats.record(0, hit=False)
        stats.record(1, hit=True)
        assert stats.total.hits == 2
        assert stats.total.misses == 1
        assert stats.core_stats(0).hits == 1
        assert stats.core_stats(0).misses == 1
        assert stats.core_stats(1).hits == 1

    def test_unknown_core_returns_zeros(self):
        stats = SharedCacheStats()
        assert stats.core_stats(9).accesses == 0
