"""Tests for the metrics modules."""

from __future__ import annotations

import pytest

from repro.metrics.basic import hit_rate, miss_reduction, mpki
from repro.metrics.multicore import (
    average_normalized_turnaround,
    fairness,
    geometric_mean,
    harmonic_mean_speedup,
    improvement,
    weighted_speedup,
)


class TestBasic:
    def test_mpki(self):
        assert mpki(5, 1000) == 5.0
        assert mpki(0, 100) == 0.0

    def test_mpki_rejects_bad_input(self):
        with pytest.raises(ValueError):
            mpki(1, 0)
        with pytest.raises(ValueError):
            mpki(-1, 100)

    def test_hit_rate(self):
        assert hit_rate(3, 4) == 0.75
        assert hit_rate(0, 0) == 0.0

    def test_hit_rate_rejects_hits_above_accesses(self):
        with pytest.raises(ValueError):
            hit_rate(5, 4)

    def test_miss_reduction(self):
        assert miss_reduction(100, 75) == 0.25
        assert miss_reduction(100, 100) == 0.0
        assert miss_reduction(0, 0) == 0.0

    def test_miss_reduction_negative_when_worse(self):
        assert miss_reduction(100, 150) == -0.5


class TestWeightedSpeedup:
    def test_alone_ipcs_give_core_count(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == 2.0

    def test_halved_ipcs(self):
        assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == 1.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_rejects_zero_alone(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])


class TestOtherMulticoreMetrics:
    def test_harmonic_mean(self):
        assert harmonic_mean_speedup([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert harmonic_mean_speedup([0.5, 2.0], [1.0, 2.0]) == pytest.approx(2 / 3)

    def test_harmonic_mean_zero_progress(self):
        assert harmonic_mean_speedup([0.0, 1.0], [1.0, 1.0]) == 0.0

    def test_antt(self):
        assert average_normalized_turnaround([0.5, 0.5], [1.0, 1.0]) == 2.0

    def test_antt_rejects_zero(self):
        with pytest.raises(ValueError):
            average_normalized_turnaround([0.0], [1.0])

    def test_fairness_perfect(self):
        assert fairness([0.5, 1.0], [1.0, 2.0]) == 1.0

    def test_fairness_skewed(self):
        assert fairness([1.0, 0.25], [1.0, 1.0]) == 0.25

    def test_fairness_zero(self):
        assert fairness([0.0, 0.0], [1.0, 1.0]) == 0.0

    def test_improvement(self):
        assert improvement(1.1, 1.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            improvement(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == 3.0

    def test_geometric_mean_rejects_bad_values(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
