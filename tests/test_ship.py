"""Tests for the SHiP policy and its signature counter table."""

from __future__ import annotations

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.ship import (
    SHiPPolicy,
    SignatureHitCounterTable,
    ship_factory,
)
from repro.common.config import CacheGeometry


def _geometry(sets=2, ways=4):
    return CacheGeometry(size_bytes=sets * ways * 64, block_bytes=64, ways=ways)


class TestSHCT:
    def test_starts_weakly_reused(self):
        shct = SignatureHitCounterTable(entries=8)
        assert shct.value(0) == 1

    def test_training_saturates(self):
        shct = SignatureHitCounterTable(entries=8, counter_bits=2)
        for _ in range(10):
            shct.train_reused(3)
        assert shct.value(3) == 3
        for _ in range(10):
            shct.train_dead(3)
        assert shct.value(3) == 0

    def test_index_deterministic(self):
        shct = SignatureHitCounterTable(entries=64)
        assert shct.index_of(1, 0x400) == shct.index_of(1, 0x400)
        assert 0 <= shct.index_of(2, 0x999) < 64

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SignatureHitCounterTable(entries=0)
        with pytest.raises(ValueError):
            SignatureHitCounterTable(counter_bits=0)


class TestSHiPPolicy:
    def _policy(self, ways=4, bypass=False):
        shct = SignatureHitCounterTable(entries=64)
        return SHiPPolicy(ways, shct, bypass=bypass), shct

    def test_trains_dead_on_unreused_eviction(self):
        policy, shct = self._policy()
        signature = shct.index_of(0, 0x10)
        before = shct.value(signature)
        policy.insert(0, core=0, pc=0x10)
        policy.insert(0, core=0, pc=0x20)  # overwrite: 0x10 never reused
        assert shct.value(signature) == before - 1

    def test_trains_reused_on_first_touch_only(self):
        policy, shct = self._policy()
        signature = shct.index_of(0, 0x10)
        policy.insert(0, core=0, pc=0x10)
        before = shct.value(signature)
        policy.touch(0, core=0)
        policy.touch(0, core=0)
        assert shct.value(signature) == before + 1

    def test_dead_signature_inserted_distant(self):
        policy, shct = self._policy()
        signature = shct.index_of(0, 0x10)
        while shct.value(signature) > 0:
            shct.train_dead(signature)
        policy.insert(1, core=0, pc=0x10)
        assert policy.rrpv[1] == policy.max_rrpv

    def test_live_signature_inserted_long(self):
        policy, shct = self._policy()
        policy.insert(1, core=0, pc=0x10)
        assert policy.rrpv[1] == policy.max_rrpv - 1

    def test_bypass_only_for_dead_signatures(self):
        policy, shct = self._policy(bypass=True)
        assert not policy.should_bypass(0, 0x10)
        signature = shct.index_of(0, 0x10)
        while shct.value(signature) > 0:
            shct.train_dead(signature)
        assert policy.should_bypass(0, 0x10)

    def test_no_bypass_when_disabled(self):
        policy, shct = self._policy(bypass=False)
        signature = shct.index_of(0, 0x10)
        while shct.value(signature) > 0:
            shct.train_dead(signature)
        assert not policy.should_bypass(0, 0x10)

    def test_invalidate_trains_dead(self):
        policy, shct = self._policy()
        signature = shct.index_of(0, 0x10)
        policy.insert(0, core=0, pc=0x10)
        before = shct.value(signature)
        policy.invalidate(0)
        assert shct.value(signature) == before - 1


class TestSHiPCache:
    def test_learns_to_deprioritize_stream(self):
        """A streaming PC's fills must end up evicted before a reused
        PC's lines once the SHCT is trained."""
        cache = SetAssociativeCache(_geometry(sets=1, ways=4),
                                    ship_factory(), "ship")
        # Train: PC 0xS streams (never reuses), PC 0xL loops over 2 blocks.
        stream_block = 100
        for _ in range(300):
            cache.access(0, 0, 0xA, False)
            cache.access(1, 0, 0xA, False)
            cache.access(stream_block, 0, 0xB, False)
            stream_block += 1
        # After training, the loop blocks should be hitting.
        assert cache.access(0, 0, 0xA, False)
        assert cache.access(1, 0, 0xA, False)

    def test_bypass_variant_keeps_stream_out(self):
        cache = SetAssociativeCache(_geometry(sets=1, ways=4),
                                    ship_factory(bypass=True), "ship-bypass")
        stream_block = 100
        for _ in range(300):
            cache.access(0, 0, 0xA, False)
            cache.access(stream_block, 0, 0xB, False)
            stream_block += 1
        # Stream fills are bypassed: occupancy stays small.
        assert cache.occupancy <= 4
        assert cache.access(0, 0, 0xA, False)
