"""Tests for the multiprogrammed mix tables."""

from __future__ import annotations

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.mixes import all_mixes, mix_members, mix_names
from repro.workloads.spec_like import benchmark


class TestMixTables:
    def test_core_counts_available(self):
        mixes = all_mixes()
        assert set(mixes) == {2, 4, 8}

    def test_member_counts_match_cores(self):
        for cores, names in all_mixes().items():
            for name in names:
                assert len(mix_members(name)) == cores

    def test_members_exist_in_catalog(self):
        for names in all_mixes().values():
            for name in names:
                for member in mix_members(name):
                    benchmark(member)  # must not raise

    def test_names_sorted_numerically(self):
        names = mix_names(2)
        suffixes = [int(name.rsplit("_", 1)[1]) for name in names]
        assert suffixes == sorted(suffixes)

    def test_minimum_population(self):
        assert len(mix_names(2)) >= 8
        assert len(mix_names(4)) >= 6
        assert len(mix_names(8)) >= 4

    def test_unknown_core_count(self):
        with pytest.raises(WorkloadError):
            mix_names(3)

    def test_unknown_mix(self):
        with pytest.raises(WorkloadError):
            mix_members("mix16_1")

    def test_mix_diversity(self):
        """Each multi-core table mixes at least three behaviour classes."""
        from repro.workloads.spec_like import benchmark_class

        for cores in (4, 8):
            classes = set()
            for name in mix_names(cores):
                for member in mix_members(name):
                    classes.add(benchmark_class(member))
            assert len(classes) >= 3
