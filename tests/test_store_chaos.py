"""Store-level chaos: degraded mode, single-flight, fault injection.

The invariant under test everywhere here: **a sick result store never
changes simulated numbers and never aborts a batch**.  A store that
crashes on put, serves corrupted bytes, turns read-only, or disappears
entirely mid-run degrades the scheduler to compute-without-cache; the
degradation is counted and surfaced (report, trace, journal), and the
results are identical to a healthy run's.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import StoreError
from repro.exec import Scheduler, SimJob, execute_job
from repro.exec.faults import FaultPlan, FaultyStore
from repro.exec.stores import (
    BACKENDS,
    FileResultStore,
    NetResultStore,
    SqliteResultStore,
    StoreServer,
)

ACCESSES = 3_000


def _grid(count: int = 4):
    return [
        SimJob.single("hmmer_like", "lru", ACCESSES, seed=seed)
        for seed in range(count)
    ]


def _healthy_results(batch):
    return [execute_job(job) for job in batch]


@pytest.fixture(params=sorted(BACKENDS))
def store_factory(request, tmp_path):
    """Factory for fresh store handles over one shared medium, per backend.

    Chaos tests need several independent handles on the same store (a
    warmer, the store under test, a rerun).  ``fs``/``sqlite`` hand out
    stores over one tmpdir; ``net`` hands out TCP clients of one live
    fs-backed :class:`StoreServer`.  The factory's ``backend`` attribute
    names the flavor.
    """
    backend = request.param
    base = tmp_path / "store"
    if backend == "net":
        server = StoreServer(FileResultStore(base), port=0)
        server.start()
        host, port = server.address
        handles = []

        def make_net():
            client = NetResultStore(f"{host}:{port}")
            handles.append(client)
            return client

        make_net.backend = backend
        yield make_net
        for client in handles:
            client.close()
        server.close()
        return

    def make_local():
        return BACKENDS[backend](base)

    make_local.backend = backend
    yield make_local


class _DeadStore:
    """A store whose medium is entirely unusable (every op raises)."""

    backend = "dead"

    def get(self, job):
        raise StoreError("medium gone")

    def put(self, job, result):
        raise StoreError("medium gone")

    def acquire_lease(self, key, ttl=30.0):
        raise StoreError("medium gone")

    def release_lease(self, lease):
        raise StoreError("medium gone")


class _DyingStore:
    """Delegates to a real store until ``budget`` ops, then goes dark.

    Models a store yanked mid-run — NFS mount dropped, disk full, db
    file deleted — after some operations already succeeded.
    """

    def __init__(self, store, budget: int) -> None:
        self._store = store
        self._budget = budget

    def __getattr__(self, name):
        return getattr(self._store, name)

    def _spend(self) -> None:
        if self._budget <= 0:
            raise StoreError("store went away mid-run")
        self._budget -= 1

    def get(self, job):
        self._spend()
        return self._store.get(job)

    def put(self, job, result):
        self._spend()
        return self._store.put(job, result)


class _ReadOnlyStore:
    """Reads fine; every write (put/lease) fails like a read-only mount."""

    def __init__(self, store) -> None:
        self._store = store

    def __getattr__(self, name):
        return getattr(self._store, name)

    def put(self, job, result):
        raise StoreError("read-only file system")

    def acquire_lease(self, key, ttl=30.0):
        raise StoreError("read-only file system")


class TestDegradedMode:
    def test_dead_store_never_aborts_and_results_match(self):
        batch = _grid()
        scheduler = Scheduler(jobs=1, store=_DeadStore())
        results = scheduler.run(batch)
        report = scheduler.last_report
        assert report.completed == len(batch)
        assert report.failed == 0
        assert report.degraded > 0
        healthy = _healthy_results(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in healthy]

    def test_store_dying_mid_run_completes_batch(self, store_factory):
        batch = _grid()
        # Warm two entries so the run starts with real hits, then the
        # store dies partway through the batch.
        warm = store_factory()
        for job in batch[:2]:
            warm.put(job, execute_job(job))
        dying = _DyingStore(store_factory(), budget=3)
        scheduler = Scheduler(jobs=1, store=dying)
        results = scheduler.run(batch)
        report = scheduler.last_report
        assert report.cached + report.completed == len(batch)
        assert report.failed == 0
        assert report.degraded > 0
        healthy = _healthy_results(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in healthy]

    def test_read_only_store_still_serves_hits(self, store_factory):
        batch = _grid()
        warm = store_factory()
        for job in batch[:2]:
            warm.put(job, execute_job(job))
        scheduler = Scheduler(jobs=1, store=_ReadOnlyStore(store_factory()))
        results = scheduler.run(batch)
        report = scheduler.last_report
        assert report.cached == 2  # reads still work
        assert report.completed == 2
        assert report.failed == 0
        assert report.degraded > 0  # the failed puts/leases, counted
        healthy = _healthy_results(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in healthy]

    def test_degradation_is_invisible_in_healthy_runs(self, tmp_path):
        scheduler = Scheduler(jobs=1, store=FileResultStore(tmp_path / "s"))
        scheduler.run(_grid(2))
        report = scheduler.last_report
        line = report.describe()
        for marker in ("degraded", "lease", "busy", "takeover"):
            assert marker not in line
        assert report.store_fields() == {}

    def test_degradation_is_visible_in_report_and_journal_fields(self):
        scheduler = Scheduler(jobs=1, store=_DeadStore())
        scheduler.run(_grid(2))
        report = scheduler.last_report
        assert "store fallbacks (degraded)" in report.describe()
        fields = report.store_fields()
        assert fields["degraded"] == report.degraded > 0
        assert "lease_contentions" not in fields  # zero stays absent

    def test_journal_batch_record_carries_store_fields(self, tmp_path, monkeypatch):
        from repro.exec.journal import RunJournal, load_journal

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        journal = RunJournal.create(experiments=["x"], jobs=1, use_cache=True)
        healthy = Scheduler(jobs=1, store=None)
        healthy.run(_grid(1))
        journal.record_batch(healthy.last_outcomes, healthy.last_report)
        degraded = Scheduler(jobs=1, store=_DeadStore())
        degraded.run(_grid(1))
        journal.record_batch(degraded.last_outcomes, degraded.last_report)
        journal.close("completed")
        records, warnings = load_journal(journal.path)
        assert not warnings
        batches = [r for r in records if r.get("record") == "batch"]
        assert "store" not in batches[0]  # healthy: byte-identical record
        assert batches[1]["store"]["degraded"] > 0


class TestStoreFaultInjection:
    def test_put_crash_degrades_not_fails(self, store_factory, tmp_path):
        batch = _grid()
        plan = FaultPlan(store_put_crash=1.0, scratch=str(tmp_path / "m"))
        store = FaultyStore(store_factory(), plan)
        scheduler = Scheduler(jobs=1, store=store)
        results = scheduler.run(batch)
        report = scheduler.last_report
        assert report.completed == len(batch)
        assert report.failed == 0
        assert report.degraded == len(batch)  # every put crashed once
        healthy = _healthy_results(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in healthy]

    def test_get_corruption_quarantines_and_recomputes(
        self, store_factory, tmp_path
    ):
        batch = _grid()
        real = store_factory()
        for job in batch:
            real.put(job, execute_job(job))
        plan = FaultPlan(store_get_corrupt=1.0, scratch=str(tmp_path / "m"))
        store = FaultyStore(store_factory(), plan)
        scheduler = Scheduler(jobs=1, store=store)
        results = scheduler.run(batch)
        report = scheduler.last_report
        # Every warm entry was damaged just before its read: quarantined,
        # recomputed, and re-published — never served corrupt.
        assert report.completed == len(batch)
        assert report.cached == 0
        assert store.stats().quarantined == len(batch)
        healthy = _healthy_results(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in healthy]
        # The faults fired once: a rerun is served entirely from cache.
        rerun = Scheduler(jobs=1, store=store)
        rerun.run(batch)
        assert rerun.last_report.cached == len(batch)

    def test_orphaned_leases_surface_and_get_swept(
        self, store_factory, tmp_path
    ):
        batch = _grid(2)
        plan = FaultPlan(store_lease_orphan=1.0, scratch=str(tmp_path / "m"))
        store = FaultyStore(store_factory(), plan)
        scheduler = Scheduler(jobs=1, store=store, lease_ttl=0.1)
        results = scheduler.run(batch)
        assert all(r is not None for r in results)
        # Releases were swallowed: the leases are orphaned on disk.
        assert len(store.active_leases()) == len(batch)
        time.sleep(0.25)  # heartbeats go stale
        census = store.active_leases()
        assert all(is_stale for _k, _o, is_stale in census)
        store.prune(keep=100)  # maintenance sweeps the orphans
        assert store.active_leases() == []

    def test_sqlite_busy_fault_is_retried_and_reported(self, tmp_path):
        batch = _grid()
        plan = FaultPlan(sqlite_busy=1.0, scratch=str(tmp_path / "m"))
        store = FaultyStore(SqliteResultStore(tmp_path / "store"), plan)
        scheduler = Scheduler(jobs=1, store=store)
        results = scheduler.run(batch)
        report = scheduler.last_report
        assert report.completed == len(batch)
        assert report.failed == 0
        assert report.busy_retries >= len(batch)
        assert "busy" in report.describe()
        healthy = _healthy_results(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in healthy]

    def test_sqlite_busy_fault_noop_on_fs_backend(self, tmp_path):
        plan = FaultPlan(sqlite_busy=1.0, scratch=str(tmp_path / "m"))
        store = FaultyStore(FileResultStore(tmp_path / "store"), plan)
        scheduler = Scheduler(jobs=1, store=store)
        scheduler.run(_grid(2))
        assert scheduler.last_report.busy_retries == 0

    def test_dotted_kinds_parse_from_spec(self):
        plan = FaultPlan.parse(
            "store.put.crash=0.5,store.get.corrupt,sqlite.busy=0.25"
        )
        assert plan.store_put_crash == 0.5
        assert plan.store_get_corrupt == 1.0
        assert plan.sqlite_busy == 0.25
        assert plan.store_lease_orphan == 0.0
        assert plan.active()


class TestSingleFlight:
    def test_second_scheduler_is_fully_cache_served(self, store_factory):
        batch = _grid()
        first = Scheduler(jobs=1, store=store_factory())
        first.run(batch)
        assert first.last_report.completed == len(batch)
        second = Scheduler(jobs=1, store=store_factory())
        second.run(batch)
        assert second.last_report.cached == len(batch)
        assert second.last_report.completed == 0

    def test_waiter_is_served_by_the_winners_put(self, store_factory):
        """A loser of the lease race settles from the winner's put."""
        store = store_factory()
        job = _grid(1)[0]
        winner_lease = store.acquire_lease(job.key(), ttl=30.0, owner="winner:1")
        assert winner_lease is not None

        scheduler = Scheduler(
            jobs=1,
            store=store_factory(),
            backoff_base=0.02,
        )
        done = {}

        def _run():
            done["results"] = scheduler.run([job])

        thread = threading.Thread(target=_run)
        thread.start()
        time.sleep(0.2)  # the scheduler is now polling as a waiter
        store.put(job, execute_job(job))  # the "winner" publishes
        store.release_lease(winner_lease)
        thread.join(timeout=30)
        assert not thread.is_alive()
        report = scheduler.last_report
        assert report.cached == 1
        assert report.completed == 0
        assert report.lease_contentions == 1
        assert done["results"][0] == execute_job(job)

    def test_waiter_takes_over_a_crashed_winner(self, store_factory):
        """A waiter computes itself once the holder's lease goes stale."""
        store = store_factory()
        job = _grid(1)[0]
        assert (
            store.acquire_lease(job.key(), ttl=0.3, owner="crashed:1")
            is not None
        )

        scheduler = Scheduler(
            jobs=1,
            store=store_factory(),
            backoff_base=0.02,
        )
        results = scheduler.run([job])
        report = scheduler.last_report
        assert report.completed == 1
        assert report.lease_contentions == 1  # first saw the live holder
        assert report.stale_takeovers == 1  # then displaced it
        assert results[0] == execute_job(job)

    def test_singleflight_off_ignores_foreign_leases(self, tmp_path):
        store = FileResultStore(tmp_path / "store")
        job = _grid(1)[0]
        assert store.acquire_lease(job.key(), ttl=30.0) is not None
        scheduler = Scheduler(
            jobs=1,
            store=FileResultStore(tmp_path / "store"),
            singleflight=False,
        )
        scheduler.run([job])
        report = scheduler.last_report
        assert report.completed == 1
        assert report.lease_contentions == 0


class TestRobustnessCLI:
    def test_cache_stats_health_line_is_byte_stable(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = {}

        def _capture(capsys):
            assert main(["cache", "stats", "--store", "sqlite"]) == 0
            return capsys

        # Two invocations of an idle store render identically.
        import io
        from contextlib import redirect_stdout

        lines = []
        for _ in range(2):
            buffer = io.StringIO()
            with redirect_stdout(buffer):
                assert main(["cache", "stats", "--store", "sqlite"]) == 0
            lines.append(buffer.getvalue())
        assert lines[0] == lines[1]
        assert (
            "robustness [sqlite]: busy_retries=0 lease_contentions=0 "
            "leases_active=0 leases_stale=0 reconnects=0 "
            "retried_requests=0 stale_takeovers=0" in lines[0]
        )

    def test_cache_stats_counts_leases(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        store = FileResultStore(tmp_path / "cache")
        store.acquire_lease("a" * 64, ttl=30.0)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "leases_active=1" in out
        assert "1 active lease(s) (0 stale)" in out

    def test_cache_rejects_unknown_store(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache", "stats", "--store", "redis"]) == 2
        assert "unknown store backend" in capsys.readouterr().err

    def test_runs_show_renders_store_line(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        from repro.exec.journal import RunJournal

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        journal = RunJournal.create(experiments=["x"], jobs=1, use_cache=True)
        degraded = Scheduler(jobs=1, store=_DeadStore())
        degraded.run(_grid(1))
        journal.record_batch(
            degraded.last_outcomes, degraded.last_report, label="x"
        )
        journal.close("completed")
        assert main(["runs", "show", journal.run_id]) == 0
        out = capsys.readouterr().out
        assert "store: degraded=" in out
