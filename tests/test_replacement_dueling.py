"""Tests for set dueling, DIP/TADIP and the RRIP family."""

from __future__ import annotations

import pytest

from repro.cache.replacement.dip import BIPPolicy, DuelingInsertionPolicy
from repro.cache.replacement.dueling import (
    FOLLOWER,
    LEADER_ALTERNATE,
    LEADER_PRIMARY,
    DuelRole,
    DuelState,
    SaturatingCounter,
    assign_role,
    policy_for,
)
from repro.cache.replacement.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy


class TestSaturatingCounter:
    def test_starts_at_midpoint(self):
        counter = SaturatingCounter(bits=4)
        assert counter.value == 8
        assert counter.max_value == 15

    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0

    def test_msb(self):
        counter = SaturatingCounter(bits=2)
        assert counter.msb_set  # starts at 2 of max 3
        counter.decrement()
        assert not counter.msb_set

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=1)


class TestAssignRole:
    def test_leader_offsets(self):
        assert assign_role(0).kind == LEADER_PRIMARY
        assert assign_role(32).kind == LEADER_ALTERNATE
        assert assign_role(5).kind == FOLLOWER

    def test_ownership_rotates(self):
        owners = {assign_role(64 * group, num_owners=4).owner for group in range(8)}
        assert owners == {0, 1, 2, 3}

    def test_both_kinds_per_owner(self):
        # With 2 owners over 4 periods each owner gets each leader kind.
        roles = [assign_role(index, num_owners=2) for index in range(0, 64 * 4)]
        kinds = {(role.owner, role.kind) for role in roles if role.kind != FOLLOWER}
        assert (0, LEADER_PRIMARY) in kinds
        assert (1, LEADER_ALTERNATE) in kinds

    def test_rejects_tiny_period(self):
        with pytest.raises(ValueError):
            assign_role(0, period=1)


class TestDuelState:
    def test_primary_misses_push_to_alternate(self):
        state = DuelState(psel_bits=4)
        for _ in range(8):
            state.record_leader_miss(DuelRole(LEADER_PRIMARY))
        assert state.prefer_alternate()

    def test_alternate_misses_push_to_primary(self):
        state = DuelState(psel_bits=4)
        for _ in range(9):
            state.record_leader_miss(DuelRole(LEADER_ALTERNATE))
        assert not state.prefer_alternate()

    def test_follower_misses_ignored(self):
        state = DuelState(psel_bits=4)
        before = state.counter_value()
        state.record_leader_miss(DuelRole(FOLLOWER))
        assert state.counter_value() == before

    def test_per_owner_independence(self):
        state = DuelState(num_owners=2, psel_bits=4)
        for _ in range(8):
            state.record_leader_miss(DuelRole(LEADER_PRIMARY, owner=0))
        assert state.prefer_alternate(0)
        # owner 1 untouched: midpoint has MSB set for even bit counts
        assert state.counter_value(1) == 8

    def test_rejects_zero_owners(self):
        with pytest.raises(ValueError):
            DuelState(num_owners=0)


class TestPolicyFor:
    def test_leader_pins_its_owner(self):
        state = DuelState()
        assert policy_for(DuelRole(LEADER_ALTERNATE, 0), state, owner=0)
        assert not policy_for(DuelRole(LEADER_PRIMARY, 0), state, owner=0)

    def test_other_threads_follow_psel_in_leader_sets(self):
        state = DuelState(num_owners=2, psel_bits=4)
        for _ in range(8):
            state.record_leader_miss(DuelRole(LEADER_PRIMARY, owner=1))
        # thread 1 prefers alternate even in thread 0's primary-leader set
        assert policy_for(DuelRole(LEADER_PRIMARY, 0), state, owner=1)


class TestBIP:
    def test_mostly_lru_insertion(self):
        policy = BIPPolicy(4, seed=5)
        lru_insertions = 0
        for _ in range(200):
            policy.insert(0, core=0)
            if policy.victim() == 0:
                lru_insertions += 1
        assert lru_insertions > 150  # epsilon = 1/32

    def test_occasional_mru_insertion(self):
        policy = BIPPolicy(4, seed=5)
        mru = 0
        for _ in range(400):
            policy.insert(0, core=0)
            if policy.stack[0] == 0:
                mru += 1
        assert 0 < mru < 60


class TestDuelingInsertionPolicy:
    def test_primary_leader_inserts_mru(self):
        state = DuelState()
        policy = DuelingInsertionPolicy(4, DuelRole(LEADER_PRIMARY, 0), state)
        policy.insert(2, core=0)
        assert policy.stack[0] == 2

    def test_alternate_leader_inserts_lru_mostly(self):
        state = DuelState()
        policy = DuelingInsertionPolicy(4, DuelRole(LEADER_ALTERNATE, 0), state, seed=1)
        bottom = 0
        for _ in range(100):
            policy.insert(2, core=0)
            if policy.stack[-1] == 2:
                bottom += 1
        assert bottom > 80

    def test_leader_misses_train_psel(self):
        state = DuelState(psel_bits=4)
        policy = DuelingInsertionPolicy(4, DuelRole(LEADER_PRIMARY, 0), state)
        before = state.counter_value()
        policy.insert(0, core=0)
        assert state.counter_value() == before + 1

    def test_thread_awareness_uses_core_psel(self):
        state = DuelState(num_owners=2, psel_bits=4)
        # Core 1 is driven to prefer BIP.
        for _ in range(8):
            state.record_leader_miss(DuelRole(LEADER_PRIMARY, owner=1))
        follower = DuelingInsertionPolicy(
            4, DuelRole(FOLLOWER), state, seed=2, thread_aware=True
        )
        bottoms = 0
        for _ in range(100):
            follower.insert(3, core=1)
            if follower.stack[-1] == 3:
                bottoms += 1
        assert bottoms > 80


class TestSRRIP:
    def test_untouched_ways_evicted_first(self):
        policy = SRRIPPolicy(4)
        policy.insert(0, core=0)
        policy.touch(0, core=0)
        assert policy.victim() in (1, 2, 3)

    def test_hit_resets_rrpv(self):
        policy = SRRIPPolicy(2)
        policy.insert(0, core=0)
        policy.insert(1, core=0)
        policy.touch(0, core=0)
        assert policy.victim() == 1

    def test_aging_when_no_distant_line(self):
        policy = SRRIPPolicy(2)
        policy.insert(0, core=0)
        policy.insert(1, core=0)
        policy.touch(0, core=0)
        policy.touch(1, core=0)
        # all rrpv 0: victim() must age and still return a way
        assert policy.victim() in (0, 1)

    def test_insertion_is_long_not_distant(self):
        policy = SRRIPPolicy(2)
        policy.insert(0, core=0)
        # way 1 untouched (distant) should be evicted before way 0 (long)
        assert policy.victim() == 1

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(4, rrpv_bits=0)


class TestBRRIP:
    def test_mostly_distant_insertion(self):
        policy = BRRIPPolicy(4, seed=9)
        distant = 0
        for _ in range(200):
            policy.insert(0, core=0)
            if policy.rrpv[0] == policy.max_rrpv:
                distant += 1
        assert distant > 150


class TestDRRIP:
    def test_leader_misses_train(self):
        state = DuelState(psel_bits=4)
        policy = DRRIPPolicy(4, DuelRole(LEADER_PRIMARY, 0), state)
        before = state.counter_value()
        policy.insert(0, core=0)
        assert state.counter_value() == before + 1

    def test_follower_uses_winner(self):
        state = DuelState(psel_bits=4)
        for _ in range(9):
            state.record_leader_miss(DuelRole(LEADER_ALTERNATE))
        follower = DRRIPPolicy(4, DuelRole(FOLLOWER), state, seed=3)
        follower.insert(0, core=0)
        assert follower.rrpv[0] == follower.max_rrpv - 1  # srrip insertion
