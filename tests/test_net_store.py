"""Net-store specifics: wire protocol, fault kinds, drain, degraded mode.

The backend-portable contract lives in ``test_stores.py`` (which runs
every contract test against a live server) and the cross-process races
in ``test_store_stress.py``.  This file pins what is unique to the
networked backend: framing and handshake, idempotent retries after
dropped replies, the circuit breaker, clean server drain on signals,
and the scheduler completing byte-identical batches when the server is
killed mid-run.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.common.errors import StoreError
from repro.exec import Scheduler, SimJob, execute_job
from repro.exec.faults import FaultPlan, FaultyStore
from repro.exec.stores import FileResultStore, NetResultStore, StoreServer
from repro.exec.stores.net import (
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    parse_address,
    recv_frame,
    send_frame,
)

ACCESSES = 1_000


def _grid(count: int = 4):
    return [
        SimJob.single("hmmer_like", "lru", ACCESSES, seed=seed)
        for seed in range(count)
    ]


def _healthy_results(batch):
    return [execute_job(job) for job in batch]


def _free_port() -> int:
    """A TCP port that was free a moment ago (for unreachable targets)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.fixture
def live(tmp_path):
    """A live fs-backed server plus one connected client."""
    backing = FileResultStore(tmp_path / "store")
    server = StoreServer(backing, port=0)
    server.start()
    host, port = server.address
    client = NetResultStore(f"{host}:{port}")
    yield server, client, backing
    client.close()
    server.close()


class _CountingBacking(FileResultStore):
    """Backing store that counts real ``put`` applications."""

    def __init__(self, base) -> None:
        super().__init__(base)
        self.put_calls = 0

    def put(self, job, result):
        self.put_calls += 1
        return super().put(job, result)


# ----------------------------------------------------------------------
# Framing and handshake
# ----------------------------------------------------------------------


class TestWireProtocol:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"op": "ping", "n": 7})
            assert recv_frame(right) == {"n": 7, "op": "ping"}
        finally:
            left.close()
            right.close()

    def test_oversized_frame_length_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ValueError, match="frame too large"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            data = b"[1, 2, 3]"
            left.sendall(struct.pack(">I", len(data)) + data)
            with pytest.raises(ValueError, match="not an object"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_port_out_of_range_rejected(self):
        with pytest.raises(StoreError, match="out of range"):
            parse_address("host:70000")

    def test_server_rejects_version_mismatch(self, live):
        server, _client, _backing = live
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            send_frame(sock, {"op": "hello", "proto": 99})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["ok"] is False
        assert (
            f"protocol version mismatch: server speaks v{PROTO_VERSION}, "
            "client sent v99 — upgrade the older side" in reply["error"]
        )

    def test_server_requires_hello_first(self, live):
        server, _client, _backing = live
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            send_frame(sock, {"op": "ping"})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["ok"] is False
        assert "expected hello frame" in reply["error"]

    def test_client_surfaces_handshake_rejection(self):
        """A refusing server turns into one clear, unretried StoreError."""
        gate = socket.socket()
        gate.bind(("127.0.0.1", 0))
        gate.listen(1)
        port = gate.getsockname()[1]

        def _reject_once():
            conn, _addr = gate.accept()
            recv_frame(conn)  # the client's hello
            send_frame(conn, {
                "ok": False,
                "error": "protocol version mismatch: server speaks v99, "
                         f"client sent v{PROTO_VERSION} — upgrade the "
                         "older side",
            })
            conn.close()

        thread = threading.Thread(target=_reject_once, daemon=True)
        thread.start()
        client = NetResultStore(f"127.0.0.1:{port}", timeout=5.0)
        try:
            with pytest.raises(
                StoreError,
                match="rejected handshake.*protocol version mismatch",
            ):
                client.stats()
            assert client.counters.retried_requests == 0
        finally:
            client.close()
            gate.close()
            thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Retries, idempotency, breaker
# ----------------------------------------------------------------------


class TestFaultKinds:
    def test_dropped_reply_put_is_retried_but_applied_once(self, tmp_path):
        """The tentpole idempotency property, end to end.

        A read timeout after the request was sent means the server may
        have applied it; the client resends the same request id and the
        server answers from its idempotency map without a second apply.
        """
        backing = _CountingBacking(tmp_path / "store")
        server = StoreServer(backing, port=0)
        server.start()
        host, port = server.address
        client = NetResultStore(f"{host}:{port}")
        try:
            job = _grid(1)[0]
            result = execute_job(job)
            client.inject_net_fault("net.read.timeout")
            assert client.put(job, result) == job.key()
            assert backing.put_calls == 1  # applied exactly once
            assert client.counters.retried_requests == 1
            assert client.counters.reconnects == 1
            assert client.get(job) == result  # and it really landed
        finally:
            client.close()
            server.close()

    def test_conn_refused_is_retried_and_counted(self, live):
        _server, client, _backing = live
        client.stats()  # establish the first connection
        client.close()  # force the next op to reconnect
        client.inject_net_fault("net.conn.refused")
        client.stats()  # refused once, then reconnects fine
        assert client.counters.retried_requests == 1
        assert client.counters.reconnects == 1

    def test_corrupt_reply_is_retried(self, live):
        _server, client, _backing = live
        job = _grid(1)[0]
        client.put(job, execute_job(job))
        client.inject_net_fault("net.reply.corrupt")
        assert client.get(job) is not None
        assert client.counters.retried_requests == 1

    def test_server_crash_fault_fails_fast(self, live):
        _server, client, _backing = live
        client.stats()
        client.inject_net_fault("net.server.crash")
        start = time.monotonic()
        with pytest.raises(StoreError, match="is down"):
            client.stats()
        assert time.monotonic() - start < 1.0  # latched, no retry ladder
        assert client.counters.retried_requests == 0

    def test_server_side_error_is_never_retried(self, live):
        _server, client, _backing = live
        with pytest.raises(StoreError, match="unknown op"):
            client._request("bogus-op")
        assert client.counters.retried_requests == 0

    def test_unknown_fault_kind_rejected(self, live):
        _server, client, _backing = live
        with pytest.raises(ValueError, match="unknown net fault kind"):
            client.inject_net_fault("net.gremlins")

    def test_faultplan_arms_net_kinds_through_faultystore(self, live):
        """``REPRO_FAULTS=net.reply.corrupt=1`` reaches the client hook."""
        _server, client, _backing = live
        plan = FaultPlan.parse("net.reply.corrupt")
        assert plan.net_reply_corrupt == 1.0
        store = FaultyStore(client, plan)
        job = _grid(1)[0]
        store.put(job, execute_job(job))
        assert store.get(job) is not None
        assert client.counters.retried_requests >= 1


class TestBreakerAndUnreachable:
    def test_unreachable_target_is_one_clear_error(self):
        client = NetResultStore(
            f"127.0.0.1:{_free_port()}", timeout=0.5, retries=0
        )
        with pytest.raises(
            StoreError,
            match=r"unreachable for stats after 1 attempts.*"
                  r"accepted form: net://HOST:PORT",
        ):
            client.stats()

    def test_breaker_opens_then_reprobes_a_restarted_server(self, tmp_path):
        port = _free_port()
        client = NetResultStore(f"127.0.0.1:{port}", timeout=0.5, retries=0)
        for _attempt in range(2):  # exhaust the breaker threshold
            with pytest.raises(StoreError, match="unreachable"):
                client.stats()
        with pytest.raises(StoreError, match="circuit open"):
            client.stats()  # fails fast, no connection attempt

        server = StoreServer(
            FileResultStore(tmp_path / "store"), port=port
        )
        server.start()
        try:
            # The breaker re-probes every few ops; within a bounded
            # number of calls the restarted server is picked up again.
            for _attempt in range(32):
                try:
                    client.stats()
                    break
                except StoreError:
                    continue
            else:
                pytest.fail("breaker never re-probed the restarted server")
            client.stats()  # and stays closed afterwards
        finally:
            client.close()
            server.close()


# ----------------------------------------------------------------------
# Degraded mode and drain
# ----------------------------------------------------------------------


class TestDegradedMode:
    def test_injected_server_crash_run_is_byte_identical(self, live):
        _server, client, _backing = live
        batch = _grid()
        client.inject_net_fault("net.server.crash")
        scheduler = Scheduler(jobs=1, store=client)
        results = scheduler.run(batch)
        report = scheduler.last_report
        assert report.completed == len(batch)
        assert report.failed == 0
        assert report.degraded > 0
        healthy = _healthy_results(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in healthy]

    def test_server_closed_mid_run_completes_byte_identical(self, tmp_path):
        """The server disappears for real mid-batch; the run still lands."""
        server = StoreServer(FileResultStore(tmp_path / "store"), port=0)
        server.start()
        host, port = server.address
        client = NetResultStore(f"{host}:{port}", timeout=1.0, retries=0)
        batch = _grid()
        calls = {"n": 0}

        def _execute_and_kill(job):
            calls["n"] += 1
            if calls["n"] == 1:
                server.close()  # the server dies after the first compute
            return execute_job(job)

        scheduler = Scheduler(jobs=1, store=client, execute=_execute_and_kill)
        results = scheduler.run(batch)
        report = scheduler.last_report
        client.close()
        assert report.completed == len(batch)
        assert report.failed == 0
        assert report.degraded > 0
        healthy = _healthy_results(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in healthy]

    def test_client_mid_drain_sees_storeerror_not_a_hang(self, live):
        server, client, _backing = live
        client.stats()  # a healthy, connected client
        server.close()
        start = time.monotonic()
        with pytest.raises(StoreError):
            NetResultStore(
                f"{client.host}:{client.port}", timeout=0.5, retries=0
            ).stats()
        assert time.monotonic() - start < 5.0

    def test_close_releases_held_leases(self, tmp_path):
        backing = FileResultStore(tmp_path / "store")
        server = StoreServer(backing, port=0)
        server.start()
        host, port = server.address
        client = NetResultStore(f"{host}:{port}")
        assert client.acquire_lease("some-key", ttl=60.0) is not None
        assert len(backing.active_leases()) == 1
        client.close()
        server.close()
        assert backing.active_leases() == []


# ----------------------------------------------------------------------
# The `store serve` CLI
# ----------------------------------------------------------------------


def _spawn_serve(tmp_path, target=None, extra=()):
    """Start ``nucache-repro store serve`` and return (proc, host, port)."""
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "default-cache")
    cmd = [
        sys.executable, "-m", "repro.cli", "store", "serve",
        target if target is not None else str(tmp_path / "store"),
        "--port", "0", *extra,
    ]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, bufsize=1, env=env,
    )
    banner = proc.stdout.readline().strip()
    listening = proc.stdout.readline().strip()
    assert listening.startswith("listening on "), (banner, listening)
    host, _colon, port = listening.removeprefix("listening on ").rpartition(":")
    return proc, banner, host, int(port)


@pytest.mark.skipif(os.name != "posix", reason="signal tests need POSIX")
class TestServeCLI:
    def test_sigterm_drains_releases_leases_and_exits_zero(self, tmp_path):
        proc, banner, host, port = _spawn_serve(tmp_path)
        try:
            assert banner.startswith("serving fs store ")
            client = NetResultStore(f"{host}:{port}", timeout=2.0, retries=0)
            job = _grid(1)[0]
            client.put(job, execute_job(job))
            assert client.acquire_lease(job.key(), ttl=300.0) is not None
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
            assert "drained; leases released; bye" in out
            # The orphanable lease was released on the way out.
            assert FileResultStore(tmp_path / "store").active_leases() == []
            # A client of the gone server gets a clean error, not a hang.
            start = time.monotonic()
            with pytest.raises(StoreError, match="unreachable"):
                client.stats()
            assert time.monotonic() - start < 10.0
            client.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_sigkilled_server_mid_run_is_byte_identical(self, tmp_path):
        """The acceptance scenario: SIGKILL the real server mid-batch."""
        proc, _banner, host, port = _spawn_serve(tmp_path)
        client = NetResultStore(f"{host}:{port}", timeout=1.0, retries=0)
        batch = _grid()
        calls = {"n": 0}

        def _execute_and_sigkill(job):
            calls["n"] += 1
            if calls["n"] == 1:
                proc.kill()  # SIGKILL: no drain, no goodbye
                proc.wait()
            return execute_job(job)

        try:
            scheduler = Scheduler(
                jobs=1, store=client, execute=_execute_and_sigkill
            )
            results = scheduler.run(batch)
            report = scheduler.last_report
            assert report.completed == len(batch)
            assert report.failed == 0
            assert report.degraded > 0
            healthy = _healthy_results(batch)
            assert [r.to_dict() for r in results] == [
                r.to_dict() for r in healthy
            ]
        finally:
            client.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_serves_sqlite_spec(self, tmp_path):
        target = f"sqlite://{tmp_path / 'store'}"
        proc, banner, host, port = _spawn_serve(tmp_path, target=target)
        try:
            assert banner.startswith("serving sqlite store ")
            client = NetResultStore(f"{host}:{port}", timeout=2.0)
            job = _grid(1)[0]
            client.put(job, execute_job(job))
            stats = client.stats()
            assert stats.entries == 1
            assert stats.backend == "net"
            assert stats.root.startswith(f"net://{host}:{port} (")
            client.close()
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_serve_rejects_net_spec(self):
        from repro.cli import main

        assert main(["store", "serve", "net://somewhere:4070"]) == 2
