"""Tests for the basic replacement policies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.replacement.basic import (
    FIFOPolicy,
    LIPPolicy,
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.insert(way, core=0)
        # 0 is oldest
        assert policy.victim() == 0

    def test_touch_promotes(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.insert(way, core=0)
        policy.touch(0, core=0)
        assert policy.victim() == 1

    def test_invalidate_demotes(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.insert(way, core=0)
        policy.invalidate(3)
        assert policy.victim() == 3

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=60))
    def test_stack_is_permutation(self, events):
        policy = LRUPolicy(4)
        for is_touch, way in events:
            if is_touch:
                policy.touch(way, core=0)
            else:
                policy.insert(way, core=0)
        assert sorted(policy.stack) == [0, 1, 2, 3]
        assert 0 <= policy.victim() < 4


class TestFIFO:
    def test_hits_do_not_promote(self):
        policy = FIFOPolicy(3)
        for way in (0, 1, 2):
            policy.insert(way, core=0)
        policy.touch(0, core=0)
        assert policy.victim() == 0

    def test_insert_resets_age(self):
        policy = FIFOPolicy(3)
        for way in (0, 1, 2):
            policy.insert(way, core=0)
        policy.insert(0, core=0)  # refilled: now newest
        assert policy.victim() == 1


class TestLIP:
    def test_inserts_at_lru(self):
        policy = LIPPolicy(4)
        # initial stack [0,1,2,3]; inserting way 0 sends it to the bottom
        policy.insert(0, core=0)
        assert policy.victim() == 0

    def test_touch_rescues(self):
        policy = LIPPolicy(4)
        policy.insert(0, core=0)
        policy.touch(0, core=0)
        assert policy.victim() != 0


class TestRandom:
    def test_victims_in_range(self):
        policy = RandomPolicy(4, seed=42)
        for _ in range(100):
            assert 0 <= policy.victim() < 4

    def test_deterministic_given_seed(self):
        a = [RandomPolicy(8, seed=3).victim() for _ in range(20)]
        b = [RandomPolicy(8, seed=3).victim() for _ in range(20)]
        # Regenerate from fresh policies each time for identical streams
        first = RandomPolicy(8, seed=3)
        second = RandomPolicy(8, seed=3)
        assert [first.victim() for _ in range(20)] == [second.victim() for _ in range(20)]

    def test_covers_all_ways_eventually(self):
        policy = RandomPolicy(4, seed=1)
        seen = {policy.victim() for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestNRU:
    def test_victim_prefers_unreferenced(self):
        policy = NRUPolicy(4)
        policy.insert(0, core=0)
        policy.insert(1, core=0)
        assert policy.victim() == 2

    def test_all_referenced_resets(self):
        policy = NRUPolicy(2)
        policy.insert(0, core=0)
        policy.insert(1, core=0)  # saturates: resets all but way 1
        assert policy.victim() == 0

    def test_invalidate_clears_bit(self):
        policy = NRUPolicy(2)
        policy.insert(0, core=0)
        policy.invalidate(0)
        assert policy.victim() == 0


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(6)

    def test_victim_avoids_recently_touched(self):
        policy = TreePLRUPolicy(4)
        for way in range(4):
            policy.insert(way, core=0)
        policy.touch(0, core=0)
        assert policy.victim() != 0

    def test_exact_lru_for_two_ways(self):
        policy = TreePLRUPolicy(2)
        policy.insert(0, core=0)
        policy.insert(1, core=0)
        assert policy.victim() == 0
        policy.touch(0, core=0)
        assert policy.victim() == 1

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=50))
    def test_victim_never_most_recent(self, touches):
        policy = TreePLRUPolicy(8)
        for way in touches:
            policy.touch(way, core=0)
        assert policy.victim() != touches[-1]

    @given(st.lists(st.integers(0, 7), max_size=50))
    def test_victim_in_range(self, touches):
        policy = TreePLRUPolicy(8)
        for way in touches:
            policy.touch(way, core=0)
        assert 0 <= policy.victim() < 8
