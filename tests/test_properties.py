"""Hypothesis property tests on the core invariants.

These complement the per-module tests with randomized checks of the
structural invariants that the simulator's correctness rests on:
LRU inclusion, UCP quota conservation, NUcache residency accounting and
the exactness of the Next-Use capture model.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.basic import lru_factory
from repro.common.config import CacheGeometry, NUcacheConfig
from repro.nucache.nextuse import EpochProfile, NextUseEvent
from repro.nucache.organization import NUCache
from repro.partition.lookahead import lookahead_partition
from repro.partition.ucp import UCPCache
from repro.partition.umon import UtilityMonitor


def _geometry(sets, ways):
    return CacheGeometry(size_bytes=sets * ways * 64, block_bytes=64, ways=ways)


blocks_strategy = st.lists(st.integers(0, 127), min_size=1, max_size=400)


class TestLRUInclusion:
    @settings(max_examples=25, deadline=None)
    @given(blocks_strategy)
    def test_bigger_lru_cache_hits_superset(self, blocks):
        """LRU stack property: every hit in a k-way cache is a hit in a
        (k+m)-way cache over the same accesses."""
        small = SetAssociativeCache(_geometry(4, 2), lru_factory(), "small")
        large = SetAssociativeCache(_geometry(4, 4), lru_factory(), "large")
        for block in blocks:
            small_hit = small.access(block, 0, 0, False)
            large_hit = large.access(block, 0, 0, False)
            assert large_hit or not small_hit

    @settings(max_examples=25, deadline=None)
    @given(blocks_strategy)
    def test_umon_curve_monotone_and_bounded(self, blocks):
        monitor = UtilityMonitor(_geometry(4, 8), sample_period=1)
        for block in blocks:
            monitor.observe(block)
        curve = monitor.utility_curve()
        assert curve[0] == 0
        assert all(a <= b for a, b in zip(curve, curve[1:]))
        assert curve[-1] + monitor.misses == len(blocks)


class TestLookaheadProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 100), min_size=9, max_size=9),
            min_size=2,
            max_size=4,
        )
    )
    def test_allocation_sums_and_bounds(self, raw_curves):
        curves = [[0] + sorted(row[1:]) for row in raw_curves]
        total_ways = 8
        allocation = lookahead_partition(curves, total_ways, min_ways=1)
        assert sum(allocation) == total_ways
        assert all(ways >= 1 for ways in allocation)


class TestUCPProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 63)),
                    min_size=1, max_size=300))
    def test_occupancy_conserved(self, accesses):
        cache = UCPCache(_geometry(4, 4), num_cores=2, repartition_period=50)
        for core, block in accesses:
            cache.access(block, core, 0, False)
        occupancy = cache.occupancy_by_core()
        assert sum(occupancy.values()) <= 16
        for ucp_set in cache.sets:
            assert sum(ucp_set.owner_count) == len(ucp_set.tag_to_way)
            assert sorted(ucp_set.stack) == sorted(ucp_set.tag_to_way.values())


class TestNUcacheProperties:
    def _cache(self):
        config = NUcacheConfig(
            deli_ways=2, num_candidate_pcs=4, epoch_misses=50,
            history_capacity=64, max_selected_pcs=2,
        )
        return NUCache(_geometry(4, 4), config)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 3)),
                    min_size=1, max_size=400))
    def test_residency_invariants(self, accesses):
        cache = self._cache()
        for block, pc in accesses:
            cache.access(block, 0, pc, False)
        for nu_set in cache.sets:
            # Main structures consistent.
            valid = [line for line in nu_set.main_lines if line.valid]
            assert len(valid) == len(nu_set.main_tag_to_way)
            for tag, way in nu_set.main_tag_to_way.items():
                assert nu_set.main_lines[way].tag == tag
            # A tag is never in both MainWays and DeliWays.
            assert not set(nu_set.main_tag_to_way) & set(nu_set.deli)
            # DeliWays never exceed their capacity.
            assert len(nu_set.deli) <= cache.deli_ways

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 3)),
                    min_size=1, max_size=400))
    def test_accesses_conserved(self, accesses):
        cache = self._cache()
        for block, pc in accesses:
            cache.access(block, 0, pc, False)
        assert cache.stats.total.accesses == len(accesses)
        assert cache.deli_hits <= cache.stats.total.hits


class TestCaptureModelExactness:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.lists(st.integers(0, 20),
                                                  min_size=3, max_size=3)),
            min_size=1, max_size=40,
        ),
        st.integers(1, 40),
    )
    def test_captured_hits_matches_bruteforce(self, raw_events, capacity):
        """The vectorized capture count equals the brute-force count."""
        events = [NextUseEvent(pc, tuple(deltas)) for pc, deltas in raw_events]
        profile = EpochProfile(3, events, [0, 0, 0], sample_period=1)
        for mask_bits in range(1, 8):
            mask = np.array([(mask_bits >> bit) & 1 == 1 for bit in range(3)])
            expected = sum(
                1
                for event in events
                if mask[event.pc_slot]
                and sum(d for d, m in zip(event.deltas, mask) if m) <= capacity
            )
            assert profile.captured_hits(mask, capacity) == expected
