"""Tests for repro.common.addr."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.addr import (
    block_address,
    is_power_of_two,
    log2_exact,
    rebuild_block_address,
    set_index,
    tag_of,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 12, 100, 1000):
            assert not is_power_of_two(value)

    def test_negative(self):
        assert not is_power_of_two(-4)


class TestLog2Exact:
    def test_exact_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(2) == 1
        assert log2_exact(64) == 6
        assert log2_exact(1 << 30) == 30

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(48)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_exact(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log2_exact(-2)


class TestBlockAddress:
    def test_strips_offset(self):
        assert block_address(0, 64) == 0
        assert block_address(63, 64) == 0
        assert block_address(64, 64) == 1
        assert block_address(130, 64) == 2

    def test_other_block_sizes(self):
        assert block_address(1024, 128) == 8
        assert block_address(1023, 1024) == 0


class TestSetIndexAndTag:
    def test_set_index(self):
        assert set_index(0, 16) == 0
        assert set_index(17, 16) == 1
        assert set_index(31, 16) == 15

    def test_tag(self):
        assert tag_of(0, 16) == 0
        assert tag_of(17, 16) == 1
        assert tag_of(16 * 5 + 3, 16) == 5

    @given(st.integers(min_value=0, max_value=2**48), st.sampled_from([1, 2, 16, 256, 4096]))
    def test_roundtrip(self, block, num_sets):
        index = set_index(block, num_sets)
        tag = tag_of(block, num_sets)
        assert rebuild_block_address(tag, index, num_sets) == block

    @given(st.integers(min_value=0, max_value=2**48), st.sampled_from([2, 16, 256]))
    def test_index_in_range(self, block, num_sets):
        assert 0 <= set_index(block, num_sets) < num_sets
