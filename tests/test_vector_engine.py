"""Equivalence and selection tests for the vector engine backend.

Three layers of evidence that ``repro.sim.vector`` cannot drift from
the scalar engine:

* **Kernel-level**: :func:`~repro.sim.vector.lru_batch` fuzzed against
  the real :class:`~repro.cache.cache.SetAssociativeCache` *and* the
  ``repro.check`` differential oracle's dict-based reference model,
  across edge geometries (1 set, 1/2/3 ways, non-power-of-two lane
  counts) and both packed-cell dtypes (int32 and tag-forced int64).
* **Engine-level**: full ``SimResult.to_dict()`` equality between
  :class:`~repro.sim.engine.MulticoreEngine` and
  :class:`~repro.sim.vector.VectorEngine` over fuzzed geometries,
  policies, core counts and memory models — covering the fully
  vectorized path, the multicore fixed-point solve, and the hybrid
  path that drives the real LLC object.
* **Plumbing**: engine selection (env/CLI), fallback triggers, and the
  store-key regression — ``REPRO_ENGINE`` must never change a
  :class:`~repro.exec.job.SimJob` key, because both backends produce
  byte-identical payloads and may share store entries.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.basic import lru_factory
from repro.check.oracle import make_reference
from repro.common.config import CacheGeometry, paper_system_config
from repro.common.errors import SimulationError
from repro.exec.job import SimJob
from repro.prefetch.prefetchers import make_prefetcher
from repro.sim.engine import MulticoreEngine
from repro.sim.memory import BandwidthLimitedMemory, FixedLatencyMemory
from repro.sim.policies import make_llc
from repro.sim.runner import make_traces
from repro.sim.vector import (
    ENGINE_ENV,
    VectorEngine,
    clear_buffer_pool,
    lru_batch,
    make_engine,
    resolve_engine_mode,
)

#: Edge-heavy (sets, ways) grid for kernel fuzzing.
KERNEL_GEOMETRIES = [
    (1, 2), (4, 1), (16, 2), (8, 3), (32, 5), (64, 8), (128, 16), (16, 4),
]


def _kernel_inputs(num_sets, ways, length, seed, big_tags=False):
    """Deterministic lanes/tags/cores arrays plus matching block addrs."""
    rng = np.random.default_rng(seed)
    footprint = max(8, num_sets * ways * 2)
    blocks = rng.integers(0, footprint, size=length)
    if big_tags:
        blocks = blocks + (np.int64(1) << np.int64(40))
    index_bits = num_sets.bit_length() - 1
    lanes = blocks & np.int64(num_sets - 1)
    tags = blocks >> np.int64(index_bits)
    cores = rng.integers(0, 4, size=length)
    return blocks, lanes, tags, cores


def _reference_cache_replay(num_sets, ways, blocks, cores):
    """Replay through the real cache; return hits, valid mask, owners."""
    geometry = CacheGeometry(
        size_bytes=num_sets * ways * 64, block_bytes=64, ways=ways
    )
    cache = SetAssociativeCache(geometry, lru_factory(), "ref")
    hits = np.zeros(len(blocks), dtype=bool)
    for i, (block, core) in enumerate(zip(blocks.tolist(), cores.tolist())):
        hits[i] = cache.access(block, core, 0, False)
    valid = np.zeros((num_sets, ways), dtype=bool)
    owners = np.zeros((num_sets, ways), dtype=np.int64)
    for set_index, cache_set in enumerate(cache.sets):
        for way in range(ways):
            valid[set_index, way] = cache_set._valid[way]
            if cache_set._valid[way]:
                owners[set_index, way] = cache_set._cores[way]
    return hits, valid, owners


class TestKernelAgainstRealCache:
    """lru_batch == SetAssociativeCache on hits, state, and owners."""

    @pytest.mark.parametrize("num_sets,ways", KERNEL_GEOMETRIES)
    def test_fuzzed_geometries(self, num_sets, ways):
        blocks, lanes, tags, cores = _kernel_inputs(
            num_sets, ways, 4_000, seed=num_sets * 31 + ways
        )
        hits, valid, owners = lru_batch(
            lanes, tags, num_sets, ways, cores=cores
        )
        ref_hits, ref_valid, ref_owners = _reference_cache_replay(
            num_sets, ways, blocks, cores
        )
        assert np.array_equal(hits, ref_hits)
        assert np.array_equal(valid, ref_valid)
        assert np.array_equal(owners[valid], ref_owners[ref_valid])

    def test_int64_cells_forced_by_big_tags(self):
        blocks, lanes, tags, cores = _kernel_inputs(
            32, 5, 3_000, seed=99, big_tags=True
        )
        assert int(tags.max()) > 2**31  # guarantees the int64 cell path
        hits, valid, owners = lru_batch(lanes, tags, 32, 5, cores=cores)
        ref_hits, ref_valid, ref_owners = _reference_cache_replay(
            32, 5, blocks, cores
        )
        assert np.array_equal(hits, ref_hits)
        assert np.array_equal(valid, ref_valid)
        assert np.array_equal(owners[valid], ref_owners[ref_valid])

    @pytest.mark.parametrize("ways", [1, 2])
    def test_low_ways_closed_form_matches_round_kernel(self, ways):
        _, lanes, tags, cores = _kernel_inputs(16, ways, 5_000, seed=7)
        fast_hits, _, _ = lru_batch(lanes, tags, 16, ways)  # closed form
        slow_hits, _, _ = lru_batch(lanes, tags, 16, ways, cores=cores)
        assert np.array_equal(fast_hits, slow_hits)

    def test_empty_stream(self):
        empty = np.zeros(0, dtype=np.int64)
        hits, valid, owners = lru_batch(empty, empty, 8, 4, cores=empty)
        assert hits.shape == (0,)
        assert not valid.any()
        assert owners.shape == (8, 4)

    def test_buffer_pool_reuse_does_not_corrupt_results(self):
        _, lanes, tags, cores = _kernel_inputs(64, 8, 4_000, seed=3)
        first = lru_batch(lanes, tags, 64, 8, cores=cores)
        again = lru_batch(lanes, tags, 64, 8, cores=cores)
        assert np.array_equal(first[0], again[0])
        assert np.array_equal(first[1], again[1])
        assert np.array_equal(first[2], again[2])
        clear_buffer_pool()
        fresh = lru_batch(lanes, tags, 64, 8, cores=cores)
        assert np.array_equal(first[0], fresh[0])


class TestKernelAgainstDifferentialOracle:
    """lru_batch in lockstep with the repro.check reference model."""

    @pytest.mark.parametrize("num_sets,ways", [(16, 4), (8, 8), (32, 8)])
    def test_oracle_lockstep(self, num_sets, ways):
        config = dataclasses.replace(
            paper_system_config(2, deli_ways=2),
            llc=CacheGeometry(
                size_bytes=num_sets * ways * 64, block_bytes=64, ways=ways
            ),
        )
        reference = make_reference("lru", config)
        _, lanes, tags, cores = _kernel_inputs(
            num_sets, ways, 4_000, seed=num_sets + ways
        )
        hits, valid, _ = lru_batch(lanes, tags, num_sets, ways, cores=cores)
        for i, (lane, tag, core) in enumerate(
            zip(lanes.tolist(), tags.tolist(), cores.tolist())
        ):
            assert reference.access(lane, tag, core, 0, False) == bool(hits[i])
        for set_index in range(num_sets):
            resident = set(reference.tag_to_way[set_index].values())
            assert int(valid[set_index].sum()) == len(resident)


#: Engine-level fuzz grid: (members, policy, memory_model, warmup).
ENGINE_CASES = [
    (["mcf_like"], "lru", "fixed", 0.25),
    (["mcf_like", "milc_like"], "lru", "fixed", 0.25),
    (["mcf_like", "milc_like", "gcc_like", "hmmer_like"], "lru", "fixed", 0.25),
    (["mcf_like", "milc_like"], "lru", "bandwidth", 0.25),
    (["mcf_like", "milc_like"], "nucache", "fixed", 0.25),
    (["art_like"], "nucache", "fixed", 0.0),
    (["mcf_like", "milc_like", "gcc_like", "hmmer_like"], "ucp", "fixed", 0.25),
    (["art_like", "twolf_like"], "srrip", "fixed", 0.25),
    (["mcf_like", "milc_like"], "lru", "fixed", 0.0),
]


def _make_memory_model(config, model):
    if model == "bandwidth":
        return BandwidthLimitedMemory(config.latency.memory, 48)
    return FixedLatencyMemory(config.latency.memory)


def _run_both(members, policy, memory_model, warmup, accesses=3_000, seed=11):
    config = paper_system_config(len(members))
    traces = make_traces(members, accesses, seed)
    scalar = MulticoreEngine(
        traces, make_llc(policy, config, seed), config,
        _make_memory_model(config, memory_model), warmup_fraction=warmup,
    )
    vector = VectorEngine(
        traces, make_llc(policy, config, seed), config,
        _make_memory_model(config, memory_model), warmup_fraction=warmup,
    )
    return scalar.run(), vector.run(), vector


class TestEngineEquivalence:
    """VectorEngine payloads are byte-identical to the scalar engine."""

    @pytest.mark.parametrize(
        "members,policy,memory_model,warmup", ENGINE_CASES,
        ids=[f"{c[1]}-x{len(c[0])}-{c[2]}-w{c[3]}" for c in ENGINE_CASES],
    )
    def test_fuzzed_configs_byte_identical(
        self, members, policy, memory_model, warmup
    ):
        scalar_result, vector_result, _ = _run_both(
            members, policy, memory_model, warmup
        )
        assert json.dumps(scalar_result.to_dict(), sort_keys=True) == (
            json.dumps(vector_result.to_dict(), sort_keys=True)
        )

    def test_full_vector_path_taken_for_plain_lru(self):
        _, _, vector = _run_both(["mcf_like", "milc_like"], "lru", "fixed", 0.25)
        assert vector.fallback_reason is None

    def test_hybrid_path_taken_for_nucache(self):
        _, _, vector = _run_both(["mcf_like"], "nucache", "fixed", 0.25)
        assert vector.fallback_reason == "hybrid:llc_policy:nucache"

    def test_hybrid_path_taken_for_bandwidth_memory(self):
        _, _, vector = _run_both(["mcf_like", "milc_like"], "lru", "bandwidth", 0.25)
        assert vector.fallback_reason == "hybrid:memory_model"

    def test_oracle_checked_scalar_matches_vector(self, monkeypatch):
        """Lockstep transitively: oracle validates scalar, vector equals it."""
        members, policy = ["mcf_like", "milc_like"], "nucache"
        config = paper_system_config(2)
        traces = make_traces(members, 2_000, 5)
        monkeypatch.setenv("REPRO_CHECK", "access")
        checked = MulticoreEngine(
            traces, make_llc(policy, config, 5), config,
            FixedLatencyMemory(config.latency.memory), warmup_fraction=0.25,
        ).run()
        monkeypatch.delenv("REPRO_CHECK")
        vector = VectorEngine(
            traces, make_llc(policy, config, 5), config,
            FixedLatencyMemory(config.latency.memory), warmup_fraction=0.25,
        ).run()
        assert checked.to_dict() == vector.to_dict()


class TestFallbackTriggers:
    """Unvectorized features delegate to the scalar loop, identically."""

    def _engines(self, prefetcher=None, members=("mcf_like",)):
        config = paper_system_config(len(members))
        traces = make_traces(list(members), 2_000, 3)
        def build(cls):
            prefetchers = None
            if prefetcher is not None:  # fresh instances: prefetchers are stateful
                prefetchers = [make_prefetcher(prefetcher) for _ in members]
            return cls(
                traces, make_llc("lru", config, 3), config,
                FixedLatencyMemory(config.latency.memory),
                warmup_fraction=0.25, prefetchers=prefetchers,
            )

        return build(MulticoreEngine), build(VectorEngine)

    def test_prefetchers_fall_back_to_scalar(self):
        scalar, vector = self._engines(prefetcher="stride")
        assert scalar.run().to_dict() == vector.run().to_dict()
        assert vector.fallback_reason == "scalar:prefetchers"

    def test_max_steps_falls_back_to_scalar(self):
        scalar, vector = self._engines()
        assert scalar.run(max_steps=500).to_dict() == (
            vector.run(max_steps=500).to_dict()
        )
        assert vector.fallback_reason == "scalar:max_steps"

    def test_access_checker_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "access")
        scalar, vector = self._engines()
        assert scalar.run().to_dict() == vector.run().to_dict()
        assert vector.fallback_reason == "scalar:checker"


class TestEngineSelection:
    """resolve_engine_mode / make_engine honor flag, env, and default."""

    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine_mode() == "scalar"

    def test_env_selects_vector(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert resolve_engine_mode() == "vector"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert resolve_engine_mode("scalar") == "scalar"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            resolve_engine_mode("simd")

    @pytest.mark.parametrize(
        "mode,expected", [("scalar", MulticoreEngine), ("vector", VectorEngine)]
    )
    def test_make_engine_classes(self, mode, expected, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        config = paper_system_config(1)
        traces = make_traces(["mcf_like"], 1_200, 1)
        engine = make_engine(
            traces, make_llc("lru", config, 1), config,
            FixedLatencyMemory(config.latency.memory), mode=mode,
        )
        assert type(engine) is expected


class TestStoreKeyRegression:
    """Engine choice must not move results in the content-addressed store.

    Both backends produce byte-identical payloads (tests above), so
    sharing entries is sound — and therefore the key must not encode
    the backend, and ``ENGINE_VERSION`` stays untouched.
    """

    def test_key_independent_of_engine_env(self, monkeypatch):
        job = SimJob.mix("mix2_1", "nucache", 50_000)
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        scalar_key = job.key()
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert SimJob.mix("mix2_1", "nucache", 50_000).key() == scalar_key
