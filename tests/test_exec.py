"""Tests for the repro.exec subsystem: jobs, store, scheduler, context."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ExecError
from repro.exec import (
    ENGINE_VERSION,
    ResultStore,
    Scheduler,
    SimJob,
    execute_job,
)
from repro.exec import context as exec_context
from repro.sim.engine import CoreResult, SimResult
from repro.sim.runner import alone_ipc, clear_alone_memo, run_single
from repro.workloads.mixes import mix_members

ACCESSES = 4_000


@pytest.fixture(autouse=True)
def _fresh_exec_context():
    """Each test starts from environment-default execution config."""
    exec_context.reset()
    yield
    exec_context.reset()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


# ----------------------------------------------------------------------
# SimJob
# ----------------------------------------------------------------------


class TestSimJob:
    def test_key_is_stable(self):
        a = SimJob.single("hmmer_like", "lru", ACCESSES)
        b = SimJob.single("hmmer_like", "lru", ACCESSES)
        assert a == b
        assert a.key() == b.key()

    def test_every_field_changes_the_key(self):
        base = SimJob.single("hmmer_like", "nucache", ACCESSES, seed=1)
        variants = [
            SimJob.single("art_like", "nucache", ACCESSES, seed=1),
            SimJob.single("hmmer_like", "lru", ACCESSES, seed=1),
            SimJob.single("hmmer_like", "nucache", ACCESSES + 1, seed=1),
            SimJob.single("hmmer_like", "nucache", ACCESSES, seed=2),
            SimJob.single("hmmer_like", "nucache", ACCESSES, seed=1,
                          capacity_cores=2),
            SimJob.single("hmmer_like", "nucache", ACCESSES, seed=1,
                          warmup_fraction=0.5),
            SimJob.single("hmmer_like", "nucache", ACCESSES, seed=1,
                          prefetcher="stride"),
            SimJob.single("hmmer_like", "nucache", ACCESSES, seed=1,
                          deli_ways=4),
            SimJob.workload(("hmmer_like",), "nucache", ACCESSES, seed=1),
        ]
        keys = {job.key() for job in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_override_order_is_irrelevant(self):
        a = SimJob(members=("x",), policy="lru", accesses=10, seed=0,
                   overrides=(("b", 2), ("a", 1)))
        b = SimJob(members=("x",), policy="lru", accesses=10, seed=0,
                   overrides=(("a", 1), ("b", 2)))
        assert a.key() == b.key()

    def test_mix_constructor_resolves_members(self):
        job = SimJob.mix("mix2_1", "lru", ACCESSES)
        assert job.members == tuple(mix_members("mix2_1"))
        assert job.kind == "workload"

    def test_round_trip(self):
        job = SimJob.single("hmmer_like", "nucache", ACCESSES, seed=7,
                            capacity_cores=4, deli_ways=6)
        clone = SimJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.key() == job.key()

    def test_validation(self):
        with pytest.raises(ExecError):
            SimJob(members=(), policy="lru", accesses=10, seed=0)
        with pytest.raises(ExecError):
            SimJob(members=("a", "b"), policy="lru", accesses=10, seed=0,
                   kind="single")
        with pytest.raises(ExecError):
            SimJob(members=("a",), policy="lru", accesses=0, seed=0)
        with pytest.raises(ExecError):
            SimJob(members=("a",), policy="lru", accesses=10, seed=0,
                   kind="warp")
        with pytest.raises(ExecError):
            SimJob.single("a", "lru", 10, deli_ways=[1, 2])

    def test_execute_matches_runner(self):
        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        assert execute_job(job).to_dict() == run_single(
            "hmmer_like", "lru", ACCESSES
        ).to_dict()


# ----------------------------------------------------------------------
# SimResult serialization (satellite: exact round-trip incl. llc_extra)
# ----------------------------------------------------------------------


class TestSimResultSerialization:
    def test_exact_round_trip_including_llc_extra(self):
        result = run_single("art_like", "nucache", ACCESSES)
        assert result.llc_extra, "nucache runs must report llc_extra"
        clone = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result
        assert clone.llc_extra == result.llc_extra
        assert clone.llc_occupancy_by_core == result.llc_occupancy_by_core
        for original, copy in zip(result.cores, clone.cores):
            assert copy == original
            assert copy.ipc == original.ipc  # exact, not approximate

    def test_core_result_round_trip(self):
        core = CoreResult(
            core_id=3, workload="w", instructions=10, cycles=25, ipc=0.4,
            mpki=1.25, llc_accesses=7, llc_misses=2,
            level_counts={"l1": 5, "llc": 2},
        )
        assert CoreResult.from_dict(json.loads(json.dumps(core.to_dict()))) == core


# ----------------------------------------------------------------------
# ResultStore
# ----------------------------------------------------------------------


class TestResultStore:
    def test_miss_then_hit(self, store):
        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        assert store.get(job) is None
        assert job not in store
        result = execute_job(job)
        store.put(job, result)
        assert job in store
        assert store.get(job) == result

    def test_versioned_layout(self, store, tmp_path):
        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        path = store.put(job, execute_job(job))
        assert path.parent.parent == tmp_path / "store" / f"v{ENGINE_VERSION}"
        assert path.name == f"{job.key()}.json"

    def test_corrupted_entry_is_a_miss_and_quarantined(self, store):
        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        path = store.put(job, execute_job(job))
        path.write_text("{ not json", encoding="utf-8")
        assert store.get(job) is None
        assert not path.exists()  # moved aside, see quarantine tests
        assert store.stats().quarantined == 1

    def test_entry_missing_fields_is_a_miss(self, store):
        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        path = store.put(job, execute_job(job))
        path.write_text(json.dumps({"job": job.to_dict()}), encoding="utf-8")
        assert store.get(job) is None

    def test_contains_delegates_to_validated_read(self, store):
        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        path = store.put(job, execute_job(job))
        assert job in store
        path.write_text("{ not json", encoding="utf-8")
        assert job not in store  # would have been True with a bare is_file()

    def test_leaked_tmp_files_excluded_and_swept(self, store):
        import os
        import time

        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        path = store.put(job, execute_job(job))
        leaked = path.with_name(f".{path.name}.999.tmp")
        leaked.write_text("torn", encoding="utf-8")

        assert store.stats().entries == 1  # tmp files are not entries

        # prune leaves young tmp files alone (a live writer may own them)
        assert store.prune(keep=10) == 0
        assert leaked.exists()
        # ...but sweeps them once they are clearly stale.
        old = time.time() - 7200
        os.utime(leaked, (old, old))
        store.prune(keep=10)
        assert not leaked.exists()
        assert path.exists()

    def test_clear_sweeps_tmp_and_quarantine(self, store):
        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        path = store.put(job, execute_job(job))
        leaked = path.with_name(f".{path.name}.999.tmp")
        leaked.write_text("torn", encoding="utf-8")
        path.write_text("{ bad", encoding="utf-8")
        assert store.get(job) is None  # quarantines the bad entry
        store.put(job, execute_job(job))
        assert store.clear() == 1
        assert not leaked.exists()
        assert store.stats().quarantined == 0

    def test_stats_clear(self, store):
        jobs = [
            SimJob.single("hmmer_like", "lru", ACCESSES),
            SimJob.single("hmmer_like", "lru", ACCESSES, seed=3),
        ]
        for job in jobs:
            store.put(job, execute_job(job))
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_prune_keep(self, store):
        result = execute_job(SimJob.single("hmmer_like", "lru", ACCESSES))
        jobs = [
            SimJob.single("hmmer_like", "lru", ACCESSES, seed=seed)
            for seed in range(5)
        ]
        for job in jobs:
            store.put(job, result)
        assert store.prune(keep=2) == 3
        assert store.stats().entries == 2

    def test_prune_age(self, store):
        import os
        import time

        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        path = store.put(job, execute_job(job))
        old = time.time() - 10 * 86400
        os.utime(path, (old, old))
        assert store.prune(max_age_days=5) == 1
        assert store.stats().entries == 0


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------


def _grid():
    return [
        SimJob.single(name, policy, ACCESSES)
        for name in ("hmmer_like", "art_like")
        for policy in ("lru", "nucache")
    ]


class TestScheduler:
    def test_parallel_matches_serial_exactly(self):
        serial = Scheduler(jobs=1).run(_grid())
        parallel = Scheduler(jobs=4).run(_grid())
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_cache_hit_on_second_run(self, store):
        first = Scheduler(jobs=1, store=store)
        results = first.run(_grid())
        assert first.last_report.completed == 4
        assert first.last_report.cached == 0

        second = Scheduler(jobs=1, store=store)
        again = second.run(_grid())
        assert second.last_report.cached == 4
        assert second.last_report.completed == 0
        assert second.last_report.cache_fraction == 1.0
        assert [r.to_dict() for r in again] == [r.to_dict() for r in results]

    def test_any_field_change_invalidates(self, store):
        Scheduler(jobs=1, store=store).run(_grid())
        changed = Scheduler(jobs=1, store=store)
        changed.run([SimJob.single("hmmer_like", "lru", ACCESSES, seed=99)])
        assert changed.last_report.cached == 0
        assert changed.last_report.completed == 1

    def test_corrupted_store_entry_recovers_by_recompute(self, store):
        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        fresh = Scheduler(jobs=1, store=store)
        (expected,) = fresh.run([job])
        store._path(job.key()).write_text("garbage", encoding="utf-8")
        recovered = Scheduler(jobs=1, store=store)
        (result,) = recovered.run([job])  # must not crash
        assert recovered.last_report.completed == 1
        assert result.to_dict() == expected.to_dict()
        assert store.get(job) is not None  # re-persisted

    def test_duplicates_simulated_once(self, store):
        calls = []

        def counting_execute(job):
            calls.append(job.key())
            return execute_job(job)

        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        scheduler = Scheduler(jobs=1, store=store, execute=counting_execute)
        results = scheduler.run([job, job, job])
        assert len(calls) == 1
        assert scheduler.last_report.completed == 3  # occurrence-weighted
        assert results[0] is results[1] is results[2]

    def test_progress_hook_reports_counts(self, store):
        events = []
        scheduler = Scheduler(jobs=1, store=store, progress=events.append)
        scheduler.run(_grid())
        kinds = [event["event"] for event in events]
        assert kinds.count("completed") == 4
        assert kinds[-1] == "batch"
        report = events[-1]["report"]
        assert report.completed == 4
        assert report.failed == 0
        assert report.wall_time > 0
        done_values = [e["done"] for e in events if e["event"] == "completed"]
        assert done_values == [1, 2, 3, 4]

    def test_failure_raises_in_strict_mode(self):
        bad = SimJob.single("no_such_benchmark", "lru", ACCESSES)
        with pytest.raises(ExecError, match="no_such_benchmark"):
            Scheduler(jobs=1, retries=0).run([bad])

    def test_failure_reported_when_not_strict(self):
        bad = SimJob.single("no_such_benchmark", "lru", ACCESSES)
        good = SimJob.single("hmmer_like", "lru", ACCESSES)
        scheduler = Scheduler(jobs=1, retries=0, strict=False)
        results = scheduler.run([bad, good])
        assert results[0] is None
        assert results[1] is not None
        assert scheduler.last_report.failed == 1
        assert scheduler.last_report.completed == 1

    def test_retry_recovers_flaky_job(self):
        attempts = []

        def flaky_execute(job):
            attempts.append(job.key())
            if len(attempts) == 1:
                raise RuntimeError("transient worker death")
            return execute_job(job)

        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        scheduler = Scheduler(jobs=1, retries=1, execute=flaky_execute)
        (result,) = scheduler.run([job])
        assert len(attempts) == 2
        assert result.to_dict() == execute_job(job).to_dict()
        assert scheduler.last_report.retried == 1
        assert scheduler.last_report.completed == 1

    def test_retries_exhausted_fails(self):
        def always_broken(job):
            raise RuntimeError("still dead")

        scheduler = Scheduler(jobs=1, retries=2, strict=False,
                              execute=always_broken, backoff_base=0.001)
        (result,) = scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
        assert result is None
        assert scheduler.last_report.retried == 2
        assert scheduler.last_report.failed == 1

    def test_backoff_is_exponential_with_deterministic_jitter(self, monkeypatch):
        def run_once():
            sleeps = []
            monkeypatch.setattr(
                "repro.exec.scheduler.time.sleep", sleeps.append
            )

            def always_broken(job):
                raise RuntimeError("still dead")

            scheduler = Scheduler(jobs=1, retries=3, strict=False,
                                  execute=always_broken,
                                  backoff_base=0.1, backoff_cap=10.0)
            scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
            return sleeps

        first = run_once()
        assert len(first) == 3  # one backoff per retry round
        # Exponential shape: each round's ceiling doubles; jitter keeps
        # every delay within [0.5, 1.0] of that ceiling.
        for round_no, delay in enumerate(first, start=1):
            ceiling = 0.1 * (2 ** (round_no - 1))
            assert 0.5 * ceiling <= delay <= ceiling
        assert first == run_once()  # jitter is seeded, not wall-clock

    def test_backoff_cap_limits_delay(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.exec.scheduler.time.sleep", sleeps.append)

        def always_broken(job):
            raise RuntimeError("still dead")

        scheduler = Scheduler(jobs=1, retries=6, strict=False,
                              execute=always_broken,
                              backoff_base=0.1, backoff_cap=0.25)
        scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
        assert len(sleeps) == 6
        assert all(delay <= 0.25 for delay in sleeps)

    def test_retry_events_carry_attempt_timings(self):
        events = []

        def flaky_execute(job):
            if not [e for e in events if e["event"] == "retry"]:
                raise RuntimeError("transient")
            return execute_job(job)

        job = SimJob.single("hmmer_like", "lru", ACCESSES)
        scheduler = Scheduler(jobs=1, retries=1, progress=events.append,
                              execute=flaky_execute, backoff_base=0.001)
        scheduler.run([job])
        (retry_event,) = [e for e in events if e["event"] == "retry"]
        assert retry_event["attempt"] == 1
        assert retry_event["elapsed"] is not None
        assert retry_event["elapsed"] >= 0
        assert retry_event["backoff"] > 0


# ----------------------------------------------------------------------
# Failure forensics (traceback / invariant payload preservation)
# ----------------------------------------------------------------------


def _raise_value_error(job):
    raise ValueError("boom-sentinel-1187")


def _raise_invariant_violation(job):
    from repro.common.errors import InvariantViolation

    raise InvariantViolation(
        "cache invariant violated at unit test: set 3: broken",
        violations=["set 3: broken", "llc: hits drifted"],
        snapshot={"policy": "lru", "counters": {"hits": 1}},
    )


class TestFailureForensics:
    def test_inline_failure_preserves_traceback(self):
        scheduler = Scheduler(jobs=1, retries=0, strict=False,
                              execute=_raise_value_error)
        scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
        (outcome,) = scheduler.last_outcomes.values()
        assert outcome["status"] == "failed"
        assert "ValueError: boom-sentinel-1187" in outcome["traceback"]
        assert "_raise_value_error" in outcome["traceback"]  # worker frame

    def test_invariant_payload_recorded(self):
        scheduler = Scheduler(jobs=1, retries=0, strict=False,
                              execute=_raise_invariant_violation)
        scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
        (outcome,) = scheduler.last_outcomes.values()
        assert outcome["violations"] == ["set 3: broken", "llc: hits drifted"]
        assert outcome["snapshot"]["counters"] == {"hits": 1}

    def test_forensics_survive_the_process_pool(self):
        jobs = [
            SimJob.single("hmmer_like", "lru", ACCESSES),
            SimJob.single("art_like", "lru", ACCESSES),
        ]
        scheduler = Scheduler(jobs=2, retries=0, strict=False,
                              execute=_raise_invariant_violation)
        scheduler.run(jobs)
        for job in jobs:
            outcome = scheduler.last_outcomes[job.key()]
            assert outcome["status"] == "failed"
            # The worker-side frames come back through the
            # _RemoteTraceback cause chain and must be in the string.
            assert "InvariantViolation" in outcome["traceback"]
            assert "_raise_invariant_violation" in outcome["traceback"]
            assert outcome["violations"] == ["set 3: broken", "llc: hits drifted"]
            assert outcome["snapshot"]["policy"] == "lru"

    def test_recovered_job_carries_no_stale_forensics(self):
        attempts = []

        def flaky(job):
            attempts.append(1)
            if len(attempts) == 1:
                raise ValueError("transient-xyzzy")
            return execute_job(job)

        scheduler = Scheduler(jobs=1, retries=1, execute=flaky,
                              backoff_base=0.001)
        scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
        (outcome,) = scheduler.last_outcomes.values()
        assert outcome["status"] == "completed"
        assert "traceback" not in outcome
        assert "violations" not in outcome

    def test_strict_error_includes_first_traceback(self):
        scheduler = Scheduler(jobs=1, retries=0, execute=_raise_value_error)
        with pytest.raises(ExecError, match="first failure traceback"):
            scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
        try:
            scheduler = Scheduler(jobs=1, retries=0, execute=_raise_value_error)
            scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
        except ExecError as exc:
            assert "boom-sentinel-1187" in str(exc)

    def test_plain_error_carries_no_snapshot(self):
        # Only InvariantViolation contributes violations/snapshot keys;
        # ordinary failures must stay compact in the journal.
        scheduler = Scheduler(jobs=1, retries=0, strict=False,
                              execute=_raise_value_error)
        scheduler.run([SimJob.single("hmmer_like", "lru", ACCESSES)])
        (outcome,) = scheduler.last_outcomes.values()
        assert "snapshot" not in outcome  # plain errors carry no snapshot


# ----------------------------------------------------------------------
# Context defaults and store-backed alone_ipc
# ----------------------------------------------------------------------


class TestContext:
    def test_configure_and_reset(self):
        config = exec_context.configure(jobs=3, use_cache=False)
        assert config.jobs == 3
        assert exec_context.resolve_store() is None
        exec_context.reset()
        assert exec_context.current().jobs == 1
        assert exec_context.resolve_store() is not None

    def test_jobs_env_default(self, monkeypatch):
        monkeypatch.setenv(exec_context.JOBS_ENV_VAR, "5")
        exec_context.reset()
        assert exec_context.current().jobs == 5

    def test_bad_jobs_env_rejected(self, monkeypatch):
        monkeypatch.setenv(exec_context.JOBS_ENV_VAR, "zero")
        exec_context.reset()
        with pytest.raises(ExecError):
            exec_context.current()

    def test_run_jobs_accumulates_totals(self):
        exec_context.reset_totals()
        exec_context.run_jobs([SimJob.single("hmmer_like", "lru", ACCESSES)])
        totals = exec_context.totals()
        assert totals.total == 1
        assert totals.completed + totals.cached == 1

    def test_alone_ipc_served_from_store_across_memo_clears(self):
        first = alone_ipc("twolf_like", 2, ACCESSES)
        clear_alone_memo()
        store = exec_context.resolve_store()
        job = SimJob.alone("twolf_like", 2, ACCESSES)
        assert store.get(job) is not None
        second = alone_ipc("twolf_like", 2, ACCESSES)
        assert second == first


# ----------------------------------------------------------------------
# End-to-end: the experiment harness through the scheduler
# ----------------------------------------------------------------------


class TestHarnessEquivalence:
    def test_mix_speedups_identical_serial_vs_parallel(self):
        from repro.experiments.harness import mix_weighted_speedups

        exec_context.configure(jobs=1, use_cache=False)
        serial = mix_weighted_speedups("mix2_1", ("lru", "nucache"), ACCESSES)
        clear_alone_memo()
        exec_context.configure(jobs=4, use_cache=False)
        parallel = mix_weighted_speedups("mix2_1", ("lru", "nucache"), ACCESSES)
        assert parallel == serial
