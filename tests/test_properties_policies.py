"""Hypothesis property tests for the predictive policies and the engine.

Complements ``test_properties.py`` with invariants of the PC-predictive
policies (SHiP, SDBP) and conservation laws of the full simulator.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.deadblock import sdbp_factory
from repro.cache.replacement.ship import ship_factory
from repro.common.config import CacheGeometry, tiny_system_config
from repro.sim.engine import MulticoreEngine
from repro.sim.policies import make_llc

from conftest import make_trace


def _geometry(sets=4, ways=4):
    return CacheGeometry(size_bytes=sets * ways * 64, block_bytes=64, ways=ways)


accesses_strategy = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 5), st.booleans()),
    min_size=1,
    max_size=300,
)


class TestPredictivePolicyInvariants:
    @settings(max_examples=20, deadline=None)
    @given(accesses_strategy)
    def test_ship_structural_consistency(self, accesses):
        cache = SetAssociativeCache(_geometry(), ship_factory(), "ship")
        for block, pc, is_write in accesses:
            cache.access(block, 0, pc, is_write)
        assert cache.occupancy <= 16
        for cache_set in cache.sets:
            for tag, way in cache_set._tag_to_way.items():
                assert cache_set.lines[way].tag == tag
                assert cache_set.lines[way].valid

    @settings(max_examples=20, deadline=None)
    @given(accesses_strategy)
    def test_ship_bypass_never_loses_hits_to_structure(self, accesses):
        """Bypassed fills must not corrupt the set: a block reported hit
        must actually be resident."""
        cache = SetAssociativeCache(_geometry(), ship_factory(bypass=True),
                                    "ship-bypass")
        for block, pc, is_write in accesses:
            hit = cache.access(block, 0, pc, is_write)
            if hit:
                assert cache.probe(block)

    @settings(max_examples=20, deadline=None)
    @given(accesses_strategy)
    def test_sdbp_victims_always_valid_ways(self, accesses):
        cache = SetAssociativeCache(_geometry(), sdbp_factory(), "sdbp")
        for block, pc, is_write in accesses:
            cache.access(block, 0, pc, is_write)
        # Re-access everything: any reported hit must be real.
        for block, pc, _ in accesses:
            if cache.probe(block):
                assert cache.access(block, 0, pc, False)

    @settings(max_examples=15, deadline=None)
    @given(accesses_strategy)
    def test_stats_conservation_across_policies(self, accesses):
        for policy_factory, name in (
            (ship_factory(), "ship"),
            (sdbp_factory(), "sdbp"),
        ):
            cache = SetAssociativeCache(_geometry(), policy_factory, name)
            for block, pc, is_write in accesses:
                cache.access(block, 0, pc, is_write)
            assert cache.stats.total.accesses == len(accesses)
            assert cache.stats.total.hits + cache.stats.total.misses == len(accesses)


class TestEngineConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(st.integers(0, 200), min_size=2, max_size=60),
        st.lists(st.integers(0, 200), min_size=2, max_size=60),
        st.sampled_from(["lru", "nucache", "ucp", "pipp", "ship"]),
    )
    def test_level_counts_partition_accesses(self, blocks_a, blocks_b, policy):
        config = tiny_system_config(2)
        traces = [make_trace(blocks_a, name="a"), make_trace(blocks_b, name="b")]
        engine = MulticoreEngine(traces, make_llc(policy, config), config)
        result = engine.run()
        for core_result, blocks in zip(result.cores, (blocks_a, blocks_b)):
            assert sum(core_result.level_counts.values()) == len(blocks)
            assert core_result.llc_misses <= core_result.llc_accesses
            assert core_result.cycles > 0

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=2, max_size=80))
    def test_warmup_never_increases_measured_misses(self, blocks):
        config = tiny_system_config(1)
        cold = MulticoreEngine(
            [make_trace(blocks)], make_llc("lru", config), config,
            warmup_fraction=0.0,
        ).run()
        warm = MulticoreEngine(
            [make_trace(blocks)], make_llc("lru", config), config,
            warmup_fraction=0.5,
        ).run()
        assert warm.cores[0].llc_misses <= cold.cores[0].llc_misses
