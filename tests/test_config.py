"""Tests for repro.common.config."""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheGeometry,
    LatencyConfig,
    NUcacheConfig,
    SystemConfig,
    config_table,
    paper_llc_geometry,
    paper_system_config,
    tiny_system_config,
)
from repro.common.errors import ConfigError


class TestCacheGeometry:
    def test_num_sets(self):
        geometry = CacheGeometry(size_bytes=256 * 1024, block_bytes=64, ways=16)
        assert geometry.num_sets == 256
        assert geometry.num_lines == 4096

    def test_scaled(self):
        geometry = CacheGeometry(size_bytes=64 * 1024, block_bytes=64, ways=16)
        assert geometry.scaled(4).num_sets == geometry.num_sets * 4
        assert geometry.scaled(4).ways == geometry.ways

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1024, block_bytes=48, ways=2)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1024, block_bytes=64, ways=0)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1000, block_bytes=64, ways=2)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=3 * 64 * 2, block_bytes=64, ways=2)

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=-1024, block_bytes=64, ways=2)


class TestLatencyConfig:
    def test_defaults_monotone(self):
        latency = LatencyConfig()
        assert latency.l1_hit < latency.l2_hit < latency.llc_hit < latency.memory

    def test_rejects_non_monotone(self):
        with pytest.raises(ConfigError):
            LatencyConfig(l1_hit=5, l2_hit=3, llc_hit=30, memory=250)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            LatencyConfig(l1_hit=0)


class TestNUcacheConfig:
    def test_defaults_valid(self):
        config = NUcacheConfig()
        assert config.deli_ways == 8
        assert config.selector == "greedy"

    def test_rejects_negative_deli(self):
        with pytest.raises(ConfigError):
            NUcacheConfig(deli_ways=-1)

    def test_zero_deli_allowed(self):
        assert NUcacheConfig(deli_ways=0).deli_ways == 0

    def test_rejects_unknown_selector(self):
        with pytest.raises(ConfigError):
            NUcacheConfig(selector="magic")

    def test_rejects_unknown_deli_replacement(self):
        with pytest.raises(ConfigError):
            NUcacheConfig(deli_replacement="mru")

    def test_rejects_max_selected_above_candidates(self):
        with pytest.raises(ConfigError):
            NUcacheConfig(num_candidate_pcs=8, max_selected_pcs=9)

    def test_rejects_zero_epoch(self):
        with pytest.raises(ConfigError):
            NUcacheConfig(epoch_misses=0)

    def test_rejects_zero_history(self):
        with pytest.raises(ConfigError):
            NUcacheConfig(history_capacity=0)

    def test_rejects_zero_sample_period(self):
        with pytest.raises(ConfigError):
            NUcacheConfig(sample_period=0)


class TestSystemConfig:
    def test_paper_preset_scales_llc(self):
        for cores in (1, 2, 4, 8):
            config = paper_system_config(cores)
            assert config.llc.size_bytes == 256 * 1024 * cores
            assert config.num_cores == cores

    def test_paper_preset_scales_nucache_knobs(self):
        assert (
            paper_system_config(4).nucache.history_capacity
            == 4 * paper_system_config(1).nucache.history_capacity
        )

    def test_paper_preset_overrides(self):
        config = paper_system_config(2, deli_ways=4, selector="topk")
        assert config.nucache.deli_ways == 4
        assert config.nucache.selector == "topk"

    def test_tiny_preset(self):
        config = tiny_system_config(1)
        assert config.llc.ways == 8
        assert config.nucache.deli_ways == 2

    def test_rejects_mismatched_block_sizes(self):
        good = paper_system_config(1)
        with pytest.raises(ConfigError):
            SystemConfig(
                num_cores=1,
                l1=CacheGeometry(size_bytes=1024, block_bytes=32, ways=2),
                l2=good.l2,
                llc=good.llc,
            )

    def test_rejects_deli_consuming_all_ways(self):
        with pytest.raises(ConfigError):
            paper_system_config(1, deli_ways=16)

    def test_rejects_zero_cores(self):
        good = paper_system_config(1)
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0, l1=good.l1, l2=good.l2, llc=good.llc)

    def test_block_bytes(self):
        assert paper_system_config(1).block_bytes == 64


class TestOverheadReport:
    def test_small_fraction_of_llc(self):
        config = paper_system_config(1)
        report = config.overhead_report()
        total_bits = sum(report.values())
        assert 0 < total_bits < 0.05 * config.llc.size_bytes * 8

    def test_structures_present(self):
        report = paper_system_config(1).overhead_report()
        assert set(report) == {
            "per_line_bits",
            "history_buffer_bits",
            "pc_table_bits",
            "histogram_bits",
        }

    def test_rejects_bad_sample_period(self):
        with pytest.raises(ConfigError):
            paper_system_config(1).overhead_report(hardware_sample_period=0)


class TestConfigTable:
    def test_contains_key_parameters(self):
        rows = dict(config_table(paper_system_config(4)))
        assert rows["Cores"] == "4"
        assert "16-way" in rows["LLC (shared)"]
        assert rows["NUcache MainWays/DeliWays"] == "8/8"

    def test_llc_geometry_helper(self):
        assert paper_llc_geometry(8).num_sets == 2048
