"""Regression tests for the invalidate → free-way-refill contract.

``CacheSet.allocate`` calls ``policy.insert`` after *every* fill — even
when the slot came from ``_free_ways`` (a way released by an explicit
``invalidate``) rather than from ``policy.victim``.  The policy is never
told "this fill landed on an invalid way", so the contract is only sound
if ``policy.invalidate(way)`` fully resets that way's per-policy state
*before* the way enters the free list.  Otherwise state from the
previous occupant leaks into the next fill: SHiP/SDBP would double-train
their predictors on the dead line, SRRIP would inherit a stale RRPV,
recency stacks would mis-order.

The audit (PR 4) found every shipped policy resets correctly; these
tests pin that so a future policy (or a refactor of the insert path)
cannot silently regress it.
"""

from __future__ import annotations

from typing import List

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.basic import LRUPolicy
from repro.cache.replacement.deadblock import DeadBlockPredictor, SDBPPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.cache.replacement.ship import SHiPPolicy, SignatureHitCounterTable
from repro.cache.replacement.dip import dip_factory
from repro.cache.set_ import CacheSet
from repro.common.config import CacheGeometry


class SpyPolicy(ReplacementPolicy):
    """Records the exact call sequence the set makes on the policy."""

    name = "spy"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self.calls: List[tuple] = []

    def touch(self, way: int, core: int) -> None:
        self.calls.append(("touch", way))

    def victim(self) -> int:
        self.calls.append(("victim", 0))
        return 0

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        self.calls.append(("insert", way))

    def invalidate(self, way: int) -> None:
        self.calls.append(("invalidate", way))


class TestInsertContract:
    """insert fires on every fill; invalidate precedes the way's reuse."""

    def test_insert_called_on_free_way_fill(self):
        spy = SpyPolicy(2)
        cache_set = CacheSet(2, spy)
        cache_set.allocate(1, 0, 0, False)
        filled = cache_set.find(1)
        assert ("insert", filled) in spy.calls
        assert ("victim", 0) not in spy.calls

    def test_invalidate_reaches_policy_before_refill(self):
        spy = SpyPolicy(2)
        cache_set = CacheSet(2, spy)
        cache_set.allocate(1, 0, 0, False)
        cache_set.allocate(2, 0, 0, False)
        freed = cache_set.find(1)
        spy.calls.clear()
        cache_set.invalidate(1)
        cache_set.allocate(3, 0, 0, False)
        # The freed way is reused by the next fill, and the policy saw
        # invalidate(way) strictly before insert(way).
        assert spy.calls == [("invalidate", freed), ("insert", freed)]
        assert cache_set.find(3) == freed

    def test_victim_not_consulted_while_free_ways_exist(self):
        spy = SpyPolicy(2)
        cache_set = CacheSet(2, spy)
        cache_set.allocate(1, 0, 0, False)
        cache_set.allocate(2, 0, 0, False)
        cache_set.invalidate(2)
        spy.calls.clear()
        cache_set.allocate(3, 0, 0, False)
        assert ("victim", 0) not in spy.calls


class TestSRRIPInvalidateReset:
    def test_refill_after_invalidate_gets_fresh_rrpv(self):
        policy = SRRIPPolicy(4)
        cache_set = CacheSet(4, policy)
        for tag in range(4):
            cache_set.allocate(tag, 0, 0, False)
        way = cache_set.find(2)
        cache_set.touch(way, 0, False)          # rrpv -> 0 (hot line)
        assert policy.rrpv[way] == 0
        cache_set.invalidate(2)
        # invalidate must mark the way distant, not leave the hot rrpv.
        assert policy.rrpv[way] == policy.max_rrpv
        cache_set.allocate(9, 0, 0, False)      # refills the freed way
        assert cache_set.find(9) == way
        # Insertion rrpv is exactly what a never-used way would get.
        assert policy.rrpv[way] == policy.max_rrpv - 1


class TestSHiPInvalidateReset:
    def _set(self):
        shct = SignatureHitCounterTable()
        policy = SHiPPolicy(4, shct)
        return CacheSet(4, policy), policy, shct

    def test_dead_line_trains_once_not_twice(self):
        cache_set, policy, shct = self._set()
        signature = shct.index_of(0, 0x40)
        other = shct.index_of(0, 0x80)
        assert other != signature            # distinct SHCT entries
        # Lifetime 1: reused line raises the PC's counter (1 -> 2) and
        # its invalidation does not train dead (it was reused).
        cache_set.allocate(1, 0, pc=0x40, is_write=False)
        cache_set.touch(cache_set.find(1), 0, False)
        cache_set.invalidate(1)
        assert shct.value(signature) == 2
        # Lifetime 2: a never-reused line of the same PC dies exactly
        # once (2 -> 1) when invalidated...
        cache_set.allocate(2, 0, pc=0x40, is_write=False)
        cache_set.invalidate(2)
        assert shct.value(signature) == 1
        # ...and refilling the freed way with another PC must NOT train
        # the stale signature again (a leak would give 0 here).
        cache_set.allocate(3, 0, pc=0x80, is_write=False)
        assert shct.value(signature) == 1

    def test_way_state_fully_cleared(self):
        cache_set, policy, _ = self._set()
        cache_set.allocate(1, 0, pc=0x40, is_write=False)
        way = cache_set.find(1)
        cache_set.invalidate(1)
        assert policy._signature[way] == -1
        assert policy._occupied[way] is False
        assert policy._reused[way] is False


class TestSDBPInvalidateReset:
    def test_refill_does_not_train_stale_signature(self):
        predictor = DeadBlockPredictor()
        policy = SDBPPolicy(4, predictor)
        cache_set = CacheSet(4, policy)
        cache_set.allocate(1, 0, pc=0x40, is_write=False)
        way = cache_set.find(1)
        cache_set.invalidate(1)
        assert policy._signature[way] == -1
        assert policy._occupied[way] is False
        signature = predictor.index_of(0, 0x40)
        counter_after_invalidate = predictor._counters[signature]
        cache_set.allocate(2, 0, pc=0x80, is_write=False)
        # A stale signature would have trained "dead" again on refill.
        assert predictor._counters[signature] == counter_after_invalidate


class TestRecencyStackInvalidate:
    def test_lru_invalidated_way_demoted_then_refilled_at_mru(self):
        policy = LRUPolicy(4)
        cache_set = CacheSet(4, policy)
        for tag in range(4):
            cache_set.allocate(tag, 0, 0, False)
        way = cache_set.find(1)
        cache_set.invalidate(1)
        assert policy.stack[-1] == way       # demoted straight to LRU
        cache_set.allocate(9, 0, 0, False)
        assert cache_set.find(9) == way      # free way reused...
        assert policy.stack[0] == way        # ...and inserted at MRU

    def test_dip_full_cache_invalidate_refill_consistent(self):
        geometry = CacheGeometry(size_bytes=4 * 4 * 64, block_bytes=64, ways=4)
        cache = SetAssociativeCache(geometry, dip_factory(), "dip")
        for block in range(64):
            cache.access(block, 0, 0, False)
        # Invalidate whichever block is resident in set 0 right now.
        target_set = cache.set_of(0)
        resident_tag = next(iter(target_set._tag_to_way))
        assert cache.invalidate(resident_tag << 2)
        freed = [w for w in range(4) if not target_set.lines[w].valid]
        assert len(freed) == 1
        cache.access(100 << 2, 0, 0, False)  # set 0, fresh tag 100
        stack = target_set.policy.stack
        assert sorted(stack) == [0, 1, 2, 3]  # stack stays a permutation
        assert target_set.find(100) == freed[0]
