"""Tests for the dead-block-prediction policy."""

from __future__ import annotations

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.deadblock import (
    DeadBlockPredictor,
    SDBPPolicy,
    sdbp_factory,
)
from repro.common.config import CacheGeometry


class TestPredictor:
    def test_starts_live(self):
        predictor = DeadBlockPredictor(entries=8)
        assert not predictor.predicts_dead(0)

    def test_votes_to_dead(self):
        predictor = DeadBlockPredictor(entries=8, dead_threshold=2)
        predictor.train_dead(3)
        assert not predictor.predicts_dead(3)
        predictor.train_dead(3)
        assert predictor.predicts_dead(3)

    def test_live_votes_recover(self):
        predictor = DeadBlockPredictor(entries=8, dead_threshold=2)
        for _ in range(3):
            predictor.train_dead(3)
        predictor.train_live(3)
        predictor.train_live(3)
        assert not predictor.predicts_dead(3)

    def test_counters_saturate(self):
        # Saturation at 3 means two live votes leave the counter at 1,
        # below the default threshold of 2 — i.e. ten dead votes weigh
        # no more than three.
        predictor = DeadBlockPredictor(entries=8, counter_bits=2)
        for _ in range(10):
            predictor.train_dead(1)
        for _ in range(2):
            predictor.train_live(1)
        assert not predictor.predicts_dead(1)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            DeadBlockPredictor(entries=0)
        with pytest.raises(ValueError):
            DeadBlockPredictor(dead_threshold=0)
        with pytest.raises(ValueError):
            DeadBlockPredictor(counter_bits=2, dead_threshold=4)


class TestSDBPPolicy:
    def _policy(self, ways=4, threshold=2):
        predictor = DeadBlockPredictor(entries=64, dead_threshold=threshold)
        return SDBPPolicy(ways, predictor), predictor

    def test_falls_back_to_lru(self):
        policy, _ = self._policy()
        for way in (0, 1, 2, 3):
            policy.insert(way, core=0, pc=0x10)
        assert policy.victim() == 0  # nothing predicted dead yet

    def test_predicted_dead_way_preferred(self):
        policy, predictor = self._policy()
        signature = predictor.index_of(0, 0xDEAD)
        for _ in range(3):
            predictor.train_dead(signature)
        for way in (0, 1, 2):
            policy.insert(way, core=0, pc=0x10)
        policy.insert(3, core=0, pc=0xDEAD)  # newest but predicted dead
        assert policy.victim() == 3

    def test_eviction_trains_dead(self):
        policy, predictor = self._policy()
        signature = predictor.index_of(0, 0x10)
        policy.insert(0, core=0, pc=0x10)
        policy.insert(0, core=0, pc=0x20)  # evicts the 0x10 line
        policy.insert(0, core=0, pc=0x10)
        policy.insert(0, core=0, pc=0x20)
        assert predictor.predicts_dead(signature)

    def test_touch_trains_live(self):
        policy, predictor = self._policy()
        signature = predictor.index_of(0, 0x10)
        predictor.train_dead(signature)
        policy.insert(0, core=0, pc=0x10)
        policy.touch(0, core=0)
        assert not predictor.predicts_dead(signature)

    def test_invalidate_resets_way(self):
        policy, _ = self._policy()
        policy.insert(0, core=0, pc=0x10)
        policy.invalidate(0)
        assert not policy._predicted_dead[0]


class TestSDBPCache:
    def test_stream_becomes_preferred_victim(self):
        geometry = CacheGeometry(size_bytes=1 * 4 * 64, block_bytes=64, ways=4)
        cache = SetAssociativeCache(geometry, sdbp_factory(), "sdbp")
        # Train: loop PC 0xA over 2 blocks reuses; stream PC 0xB never.
        stream_block = 100
        for _ in range(200):
            cache.access(0, 0, 0xA, False)
            cache.access(1, 0, 0xA, False)
            cache.access(stream_block, 0, 0xB, False)
            stream_block += 1
        # Loop lines survive the stream once 0xB is predicted dead.
        assert cache.access(0, 0, 0xA, False)
        assert cache.access(1, 0, 0xA, False)
