"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.common.config import CacheGeometry, tiny_system_config
from repro.workloads.trace import Trace


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    """Point the persistent result store at a per-session tmpdir.

    Keeps the suite from reading (or polluting) the developer's
    ``~/.cache/nucache-repro`` while still exercising the cache-first
    execution path; within the session identical simulations are served
    from the store, which is exactly the production behavior.
    """
    from repro.exec import STORE_ENV_VAR
    from repro.exec import context as exec_context

    previous = os.environ.get(STORE_ENV_VAR)
    os.environ[STORE_ENV_VAR] = str(tmp_path_factory.mktemp("result-store"))
    exec_context.reset()
    yield
    if previous is None:
        os.environ.pop(STORE_ENV_VAR, None)
    else:
        os.environ[STORE_ENV_VAR] = previous
    exec_context.reset()


@pytest.fixture
def tiny_config():
    """A small single-core system config for fast tests."""
    return tiny_system_config(1)


@pytest.fixture
def tiny_geometry():
    """A 4-set, 4-way, 64 B-line cache geometry."""
    return CacheGeometry(size_bytes=4 * 4 * 64, block_bytes=64, ways=4)


def make_trace(blocks, name="t", pcs=None, writes=None, gap=0, block_bytes=64):
    """Build a Trace from a list of block numbers (addresses = block*64)."""
    blocks = list(blocks)
    addresses = np.array([b * block_bytes for b in blocks], dtype=np.int64)
    if pcs is None:
        pcs = [0] * len(blocks)
    if writes is None:
        writes = [False] * len(blocks)
    return Trace(
        name,
        addresses,
        np.array(pcs, dtype=np.int64),
        np.array(writes, dtype=bool),
        instruction_gap=gap,
    )


class ReferenceLRUCache:
    """Brute-force fully-explicit LRU cache used as a test oracle."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets = [[] for _ in range(num_sets)]  # list of tags, MRU first

    def access(self, block_addr: int) -> bool:
        index = block_addr % self.num_sets
        tag = block_addr // self.num_sets
        tags = self.sets[index]
        if tag in tags:
            tags.remove(tag)
            tags.insert(0, tag)
            return True
        tags.insert(0, tag)
        if len(tags) > self.ways:
            tags.pop()
        return False
