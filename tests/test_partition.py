"""Tests for UMON, lookahead partitioning, UCP and PIPP."""

from __future__ import annotations

import pytest

from repro.common.config import CacheGeometry
from repro.partition.lookahead import lookahead_partition
from repro.partition.pipp import PIPPCache
from repro.partition.ucp import UCPCache
from repro.partition.umon import UtilityMonitor


def _geometry(sets=8, ways=4):
    return CacheGeometry(size_bytes=sets * ways * 64, block_bytes=64, ways=ways)


class TestUtilityMonitor:
    def test_position_hits_match_stack_distance(self):
        monitor = UtilityMonitor(_geometry(sets=1, ways=4), sample_period=1)
        # blocks all map to set 0 (1 set)
        monitor.observe(0)
        monitor.observe(0)  # hit at MRU (position 0)
        monitor.observe(1)
        monitor.observe(0)  # hit at position 1
        assert monitor.position_hits[0] == 1
        assert monitor.position_hits[1] == 1
        assert monitor.misses == 2

    def test_utility_curve_cumulative(self):
        monitor = UtilityMonitor(_geometry(sets=1, ways=4), sample_period=1)
        monitor.position_hits = [5, 3, 2, 0]
        assert monitor.utility_curve() == [0, 5, 8, 10, 10]

    def test_sampling_skips_sets(self):
        monitor = UtilityMonitor(_geometry(sets=8, ways=2), sample_period=8)
        monitor.observe(1)  # set 1: not sampled
        monitor.observe(1)
        assert monitor.accesses == 0
        monitor.observe(8)  # set 0: sampled
        assert monitor.misses == 1

    def test_atd_capacity_bounded(self):
        monitor = UtilityMonitor(_geometry(sets=1, ways=2), sample_period=1)
        for block in range(10):
            monitor.observe(block)
        monitor.observe(9)
        assert monitor.position_hits[0] == 1  # 9 still resident
        monitor.observe(0)
        assert monitor.misses == 11  # 0 evicted long ago

    def test_decay_halves(self):
        monitor = UtilityMonitor(_geometry(), sample_period=1)
        monitor.position_hits = [8, 4, 2, 1]
        monitor.misses = 10
        monitor.decay()
        assert monitor.position_hits == [4, 2, 1, 0]
        assert monitor.misses == 5

    def test_decay_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            UtilityMonitor(_geometry()).decay(0)

    def test_rejects_bad_sample_period(self):
        with pytest.raises(ValueError):
            UtilityMonitor(_geometry(), sample_period=0)


class TestLookaheadPartition:
    def test_concentrates_on_utility(self):
        # core 0 gains a lot from every way; core 1 gains nothing.
        curves = [[0, 10, 20, 30, 40], [0, 0, 0, 0, 0]]
        allocation = lookahead_partition(curves, total_ways=4, min_ways=1)
        assert allocation == [3, 1]

    def test_balanced_for_equal_curves(self):
        curves = [[0, 10, 20, 30, 40]] * 2
        allocation = lookahead_partition(curves, total_ways=4)
        assert sum(allocation) == 4
        assert sorted(allocation) == [2, 2]

    def test_looks_past_plateau(self):
        # core 0: nothing until 3 ways, then a huge jump; core 1: small
        # steady gains.  Lookahead must see core 0's jump.
        curves = [[0, 0, 0, 100, 100], [0, 5, 10, 15, 20]]
        allocation = lookahead_partition(curves, total_ways=4, min_ways=0)
        assert allocation[0] == 3

    def test_respects_min_ways(self):
        curves = [[0, 100, 200, 300, 400], [0, 0, 0, 0, 0]]
        allocation = lookahead_partition(curves, total_ways=4, min_ways=1)
        assert allocation[1] >= 1

    def test_sum_equals_total(self):
        curves = [[0, 1, 2, 3, 4, 5, 6, 7, 8]] * 4
        assert sum(lookahead_partition(curves, total_ways=8)) == 8

    def test_short_curves_capped(self):
        # A core whose curve stops at 2 ways can never receive more.
        curves = [[0, 50, 60], [0, 1, 2, 3, 4, 5, 6, 7, 8]]
        allocation = lookahead_partition(curves, total_ways=8)
        assert allocation[0] <= 2
        assert sum(allocation) == 8

    def test_rejects_impossible_minimum(self):
        with pytest.raises(ValueError):
            lookahead_partition([[0, 1], [0, 1], [0, 1]], total_ways=2, min_ways=1)

    def test_rejects_no_cores(self):
        with pytest.raises(ValueError):
            lookahead_partition([], total_ways=4)


class TestUCPCache:
    def test_basic_hit_miss(self):
        cache = UCPCache(_geometry(), num_cores=2, repartition_period=10**9)
        assert not cache.access(0, 0, 0, False)
        assert cache.access(0, 0, 0, False)

    def test_enforcement_protects_quota(self):
        # 1 set, 4 ways; core 0 allocated 3 ways, core 1 allocated 1.
        cache = UCPCache(_geometry(sets=1, ways=4), num_cores=2,
                         repartition_period=10**9)
        cache.allocation = [3, 1]
        for block in (0, 1, 2):
            cache.access(block, core=0, pc=0, is_write=False)
        # Core 1 floods; it may only ever hold 1 way.
        for block in (10, 11, 12, 13, 14):
            cache.access(block, core=1, pc=0, is_write=False)
        occupancy = cache.occupancy_by_core()
        assert occupancy.get(0, 0) == 3
        assert occupancy.get(1, 0) == 1
        # Core 0's lines survived the flood.
        for block in (0, 1, 2):
            assert cache.access(block, core=0, pc=0, is_write=False)

    def test_over_quota_core_reclaimed(self):
        cache = UCPCache(_geometry(sets=1, ways=4), num_cores=2,
                         repartition_period=10**9)
        cache.allocation = [2, 2]
        for block in (0, 1, 2, 3):
            cache.access(block, core=0, pc=0, is_write=False)  # core 0 holds 4
        cache.allocation = [1, 3]
        cache.access(10, core=1, pc=0, is_write=False)
        occupancy = cache.occupancy_by_core()
        assert occupancy[0] == 3  # reclaimed one over-quota way
        assert occupancy[1] == 1

    def test_repartition_runs_on_schedule(self):
        cache = UCPCache(_geometry(), num_cores=2, repartition_period=10)
        for block in range(25):
            cache.access(block, core=block % 2, pc=0, is_write=False)
        assert cache.repartitions == 2

    def test_repartition_allocates_to_utility(self):
        cache = UCPCache(_geometry(sets=2, ways=4), num_cores=2,
                         repartition_period=10**9, umon_sample_period=1)
        # Core 0 re-uses two blocks (high utility); core 1 streams.
        for _ in range(50):
            cache.access(0, core=0, pc=0, is_write=False)
            cache.access(2, core=0, pc=0, is_write=False)
        for block in range(100, 200):
            cache.access(block, core=1, pc=0, is_write=False)
        allocation = cache.repartition()
        assert allocation[0] >= allocation[1]

    def test_rejects_more_cores_than_ways(self):
        with pytest.raises(ValueError):
            UCPCache(_geometry(ways=4), num_cores=5)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            UCPCache(_geometry(), num_cores=0)


class TestPIPPCache:
    def test_basic_hit_miss(self):
        cache = PIPPCache(_geometry(), num_cores=2, repartition_period=10**9)
        assert not cache.access(0, 0, 0, False)
        assert cache.access(0, 0, 0, False)

    def test_insertion_depth_follows_allocation(self):
        cache = PIPPCache(_geometry(sets=1, ways=4), num_cores=2,
                          repartition_period=10**9, stream_detection=False)
        cache.allocation = [3, 1]
        # Fill with core 1 lines, then insert one core 0 line: core 0's
        # line lands at depth ways - 3 = 1, i.e. near the top.
        for block in (10, 11, 12, 13):
            cache.access(block, core=1, pc=0, is_write=False)
        cache.access(0, core=0, pc=0, is_write=False)
        pipp_set = cache.sets[0]
        way_of_0 = pipp_set.tag_to_way[0]
        assert pipp_set.stack.index(way_of_0) == 1

    def test_low_allocation_inserts_near_lru(self):
        cache = PIPPCache(_geometry(sets=1, ways=4), num_cores=2,
                          repartition_period=10**9, stream_detection=False)
        cache.allocation = [3, 1]
        for block in (0, 1, 2, 3):
            cache.access(block, core=0, pc=0, is_write=False)
        cache.access(10, core=1, pc=0, is_write=False)
        pipp_set = cache.sets[0]
        way = pipp_set.tag_to_way[10 >> 0]
        assert pipp_set.stack.index(way) == 3  # bottom

    def test_promotion_is_single_step(self):
        cache = PIPPCache(_geometry(sets=1, ways=4), num_cores=1,
                          repartition_period=10**9, seed=1,
                          stream_detection=False)
        cache.allocation = [1]
        for block in (0, 1, 2, 3):
            cache.access(block, core=0, pc=0, is_write=False)
        pipp_set = cache.sets[0]
        way = pipp_set.tag_to_way[0]
        start = pipp_set.stack.index(way)
        cache.access(0, core=0, pc=0, is_write=False)
        end = pipp_set.stack.index(way)
        assert start - end in (0, 1)  # moved at most one position

    def test_stream_detection_flags_streamer(self):
        cache = PIPPCache(_geometry(sets=4, ways=4), num_cores=2,
                          repartition_period=10**9, umon_sample_period=1)
        for _ in range(30):
            cache.access(0, core=0, pc=0, is_write=False)  # reuses
        for block in range(200):
            cache.access(block + 100, core=1, pc=0, is_write=False)  # streams
        cache.repartition()
        assert not cache.streaming[0]
        assert cache.streaming[1]

    def test_victim_is_stack_bottom(self):
        cache = PIPPCache(_geometry(sets=1, ways=2), num_cores=1,
                          repartition_period=10**9, stream_detection=False)
        cache.allocation = [2]
        cache.access(0, core=0, pc=0, is_write=False)
        cache.access(1, core=0, pc=0, is_write=False)
        cache.access(2, core=0, pc=0, is_write=False)
        assert not cache.access(0, core=0, pc=0, is_write=False)

    def test_occupancy_by_core(self):
        cache = PIPPCache(_geometry(), num_cores=2, repartition_period=10**9)
        cache.access(0, core=0, pc=0, is_write=False)
        cache.access(1, core=1, pc=0, is_write=False)
        assert cache.occupancy_by_core() == {0: 1, 1: 1}

    def test_rejects_more_cores_than_ways(self):
        with pytest.raises(ValueError):
            PIPPCache(_geometry(ways=2), num_cores=3)
