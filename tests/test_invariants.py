"""Tests for the runtime invariant sanitizer (repro.check.invariants)."""

from __future__ import annotations

import pickle

import pytest

from repro.check import fuzz
from repro.check.invariants import (
    CHECK_ENV_VAR,
    MODE_ACCESS,
    MODE_EPOCH,
    MODES,
    EngineChecker,
    assert_llc,
    check_llc,
    current_mode,
    engine_checker,
    snapshot_llc,
)
from repro.common.errors import InvariantViolation, ReproError
from repro.nucache.organization import _DeliEntry
from repro.sim.engine import MulticoreEngine
from repro.sim.policies import make_llc

from conftest import make_trace


def _populated(policy: str = "nucache", accesses: int = 2000, **overrides):
    """An LLC of the given organization after a seeded fuzz stream."""
    case = fuzz.FuzzCase(policy=policy, accesses=accesses, **overrides)
    llc = make_llc(policy, fuzz.system_config(case), seed=case.seed)
    for block_addr, core, pc, is_write in fuzz.generate_stream(case):
        llc.access(block_addr, core, pc, is_write)
    return llc


def _set_with_deli(llc, minimum: int = 2):
    """First set holding at least ``minimum`` DeliWay lines."""
    for nu_set in llc.sets:
        if len(nu_set.deli) >= minimum:
            return nu_set
    raise AssertionError("stream left no set with enough DeliWay lines")


class TestMode:
    def test_defaults_to_off(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
        assert current_mode() == "off"
        assert engine_checker(object()) is None

    @pytest.mark.parametrize("mode", MODES)
    def test_recognized_values(self, monkeypatch, mode):
        monkeypatch.setenv(CHECK_ENV_VAR, mode)
        assert current_mode() == mode

    def test_case_and_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV_VAR, " Epoch ")
        assert current_mode() == MODE_EPOCH

    def test_bad_value_rejected(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV_VAR, "sometimes")
        with pytest.raises(ReproError, match="REPRO_CHECK"):
            current_mode()


class TestCleanStructures:
    @pytest.mark.parametrize(
        "policy", ["lru", "srrip", "sdbp", "nucache", "nucache-ucp", "ucp", "pipp"]
    )
    def test_healthy_llc_has_no_violations(self, policy):
        llc = _populated(policy, accesses=1000)
        assert check_llc(llc) == []
        assert_llc(llc)  # must not raise

    def test_fresh_llc_is_clean(self):
        case = fuzz.FuzzCase(policy="nucache")
        llc = make_llc("nucache", fuzz.system_config(case))
        assert check_llc(llc) == []


class TestCorruptionDetection:
    def test_tag_in_both_main_and_deli(self):
        llc = _populated()
        nu_set = next(s for s in llc.sets if s.main_tag_to_way)
        tag, way = next(iter(nu_set.main_tag_to_way.items()))
        line = nu_set.main_lines[way]
        nu_set.deli[tag] = _DeliEntry(
            line.core, line.pc, line.pc_slot, line.dirty, seq=llc.retentions
        )
        assert any("both MainWays and DeliWays" in v for v in check_llc(llc))

    def test_broken_main_stack_permutation(self):
        llc = _populated()
        stack = llc.sets[0].main_policy.stack
        stack[0] = stack[1]
        assert any("not a permutation" in v for v in check_llc(llc))

    def test_free_list_corruption(self):
        llc = _populated("lru")
        cache_set = next(s for s in llc.sets if s._tag_to_way)
        cache_set._free_ways.append(next(iter(cache_set._tag_to_way.values())))
        assert any("free ways" in v.lower() for v in check_llc(llc))

    def test_negative_nextuse_counter(self):
        llc = _populated()
        llc.controller.profiler._evictions[0] = -1
        assert any("negative eviction counter" in v for v in check_llc(llc))

    def test_stats_tamper(self):
        llc = _populated("lru")
        llc.stats.total.hits += 1
        assert any("per-core hits" in v for v in check_llc(llc))

    def test_deli_overflow(self):
        llc = _populated()
        nu_set = _set_with_deli(llc, minimum=1)
        for extra in range(llc.deli_ways + 1):
            nu_set.deli[0x900000 + extra] = _DeliEntry(
                0, 0x400000, -1, False, seq=llc.retentions + extra
            )
        assert any("capacity" in v for v in check_llc(llc))

    def test_fifo_seq_swap(self):
        llc = _populated()
        entries = list(_set_with_deli(llc).deli.values())
        entries[0].seq, entries[1].seq = entries[1].seq, entries[0].seq
        assert any("FIFO order broken" in v for v in check_llc(llc))

    def test_retention_conservation(self):
        llc = _populated()
        llc.retentions += 1
        assert any("retention conservation" in v for v in check_llc(llc))

    def test_quota_corruption_on_partitioned(self):
        llc = _populated("nucache-ucp")
        llc.allocation[0] += 1
        assert any("quotas" in v for v in check_llc(llc))


class TestViolationPayload:
    def _violation(self):
        llc = _populated()
        entries = list(_set_with_deli(llc).deli.values())
        entries[0].seq, entries[1].seq = entries[1].seq, entries[0].seq
        with pytest.raises(InvariantViolation) as info:
            assert_llc(llc, context="unit test")
        return info.value

    def test_assert_llc_raises_with_snapshot(self):
        violation = self._violation()
        assert violation.violations
        assert violation.context == "unit test"
        snapshot = violation.snapshot
        assert snapshot["policy"]
        assert snapshot["sets"]  # the offending set is serialized
        payload = violation.to_dict()
        assert payload["violations"] == list(violation.violations)

    def test_violation_survives_pickling(self):
        violation = self._violation()
        clone = pickle.loads(pickle.dumps(violation))
        assert clone.violations == violation.violations
        assert clone.snapshot == violation.snapshot
        assert str(clone) == str(violation)

    def test_snapshot_is_bounded(self):
        llc = _populated()
        snapshot = snapshot_llc(llc)
        assert len(snapshot["sets"]) <= 8


class TestEngineIntegration:
    def _engine(self, policy="nucache"):
        case = fuzz.FuzzCase(policy=policy, cores=1)
        config = fuzz.system_config(case)
        llc = make_llc(policy, config, seed=case.seed)
        blocks = [(7 * i) % 96 for i in range(1500)]
        pcs = [0x400000 + (i % 9) * 4 for i in range(1500)]
        trace = make_trace(blocks, pcs=pcs, gap=0)
        return MulticoreEngine([trace], llc, config), llc

    def test_checked_run_matches_unchecked(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
        engine, _ = self._engine()
        baseline = engine.run().to_dict()
        for mode in (MODE_EPOCH, MODE_ACCESS):
            monkeypatch.setenv(CHECK_ENV_VAR, mode)
            engine, _ = self._engine()
            assert engine.run().to_dict() == baseline

    @pytest.mark.parametrize("mode", [MODE_EPOCH, MODE_ACCESS])
    def test_corrupted_llc_fails_checked_run(self, monkeypatch, mode):
        monkeypatch.setenv(CHECK_ENV_VAR, mode)
        engine, llc = self._engine()
        llc.stats.total.hits += 1  # conservation break the checker must see
        with pytest.raises(InvariantViolation):
            engine.run()

    def test_epoch_mode_checks_epochless_llc_at_interval(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV_VAR, MODE_EPOCH)
        engine, llc = self._engine("lru")
        llc.stats.total.hits += 1
        with pytest.raises(InvariantViolation):
            engine.run()  # the terminal finish() check fires at the latest

    def test_access_mode_checks_every_step(self):
        llc = _populated("lru", accesses=50)
        checker = EngineChecker(llc, MODE_ACCESS)
        for step in range(1, 6):
            checker.after_step(step)
        assert checker.checks_run == 5
