"""Tests for the prefetcher models and their simulator integration."""

from __future__ import annotations

import pytest

from repro.common.config import tiny_system_config
from repro.prefetch.prefetchers import (
    PREFETCH_PC,
    NextLinePrefetcher,
    NoPrefetcher,
    StreamPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.sim.core import CoreModel
from repro.sim.engine import MulticoreEngine
from repro.sim.memory import FixedLatencyMemory
from repro.sim.policies import make_llc

from conftest import make_trace


class TestNoPrefetcher:
    def test_never_prefetches(self):
        prefetcher = NoPrefetcher()
        assert prefetcher.observe(5, 0x10, True) == []
        assert prefetcher.issued == 0


class TestNextLine:
    def test_prefetches_on_miss(self):
        prefetcher = NextLinePrefetcher(degree=2)
        assert prefetcher.observe(10, 0x10, was_miss=True) == [11, 12]
        assert prefetcher.issued == 2

    def test_silent_on_hit(self):
        prefetcher = NextLinePrefetcher()
        assert prefetcher.observe(10, 0x10, was_miss=False) == []

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStride:
    def test_detects_constant_stride(self):
        prefetcher = StridePrefetcher(degree=2, confidence_threshold=2)
        assert prefetcher.observe(0, 0x10, True) == []      # table fill
        assert prefetcher.observe(4, 0x10, True) == []      # stride learned
        assert prefetcher.observe(8, 0x10, True) == [12, 16]  # 2nd confirmation
        assert prefetcher.observe(12, 0x10, True) == [16, 20]

    def test_negative_stride(self):
        prefetcher = StridePrefetcher(degree=1, confidence_threshold=2)
        for block in (100, 98, 96):
            prefetcher.observe(block, 0x10, True)
        assert prefetcher.observe(94, 0x10, True) == [92]

    def test_stride_change_resets_confidence(self):
        prefetcher = StridePrefetcher(degree=1, confidence_threshold=2)
        for block in (0, 4, 8, 12):
            prefetcher.observe(block, 0x10, True)
        assert prefetcher.observe(13, 0x10, True) == []  # stride broke

    def test_per_pc_isolation(self):
        prefetcher = StridePrefetcher(degree=1, confidence_threshold=1)
        prefetcher.observe(0, 0xA, True)
        prefetcher.observe(4, 0xA, True)
        # A different PC interleaved does not disturb 0xA's stride.
        prefetcher.observe(1000, 0xB, True)
        assert prefetcher.observe(8, 0xA, True) == [12]

    def test_table_capacity_bounded(self):
        prefetcher = StridePrefetcher(table_size=2)
        for pc in range(10):
            prefetcher.observe(pc * 100, pc, True)
        assert len(prefetcher._table) <= 2


class TestStream:
    def test_trains_then_runs_ahead(self):
        prefetcher = StreamPrefetcher(degree=2, train_length=2)
        results = [prefetcher.observe(block, 0x10, True) for block in range(6)]
        assert results[-1] == [6, 7]

    def test_direction_matters(self):
        prefetcher = StreamPrefetcher(degree=1, train_length=2)
        for block in (100, 99, 98, 97):
            last = prefetcher.observe(block, 0x10, True)
        assert last == [96]

    def test_unknown_prefetcher_rejected(self):
        with pytest.raises(ValueError):
            make_prefetcher("psychic")

    def test_factory_builds_all(self):
        for name in ("none", "nextline", "stride", "stream"):
            candidates = make_prefetcher(name).observe(0, 0, False)
            assert isinstance(candidates, list)


class TestIntegration:
    def test_prefetch_fills_llc(self):
        config = tiny_system_config(1)
        trace = make_trace(list(range(0, 64)))
        llc = make_llc("lru", config)
        core = CoreModel(0, trace, config, prefetcher=StridePrefetcher(degree=4,
                                                                       confidence_threshold=1))
        memory = FixedLatencyMemory(config.latency.memory)
        for _ in range(len(trace)):
            core.step(llc, memory)
        # With a trained stride prefetcher the sequential walk should
        # have far fewer demand LLC misses than its 64 blocks.
        assert core.llc_misses() < 32

    def test_prefetch_pc_reserved_value(self):
        config = tiny_system_config(1)
        trace = make_trace(list(range(0, 32)))
        llc = make_llc("lru", config)
        seen_pcs = []
        original = llc.access

        def spy(block, core_id, pc, is_write):
            seen_pcs.append(pc)
            return original(block, core_id, pc, is_write)

        llc.access = spy  # type: ignore[method-assign]
        core = CoreModel(0, trace, config,
                         prefetcher=NextLinePrefetcher(degree=1))
        memory = FixedLatencyMemory(config.latency.memory)
        for _ in range(len(trace)):
            core.step(llc, memory)
        assert PREFETCH_PC in seen_pcs

    def test_engine_validates_prefetcher_count(self):
        from repro.common.errors import SimulationError

        config = tiny_system_config(2)
        traces = [make_trace([0, 1]), make_trace([5, 6])]
        with pytest.raises(SimulationError):
            MulticoreEngine(traces, make_llc("lru", config), config,
                            prefetchers=[NoPrefetcher()])

    def test_runner_prefetcher_smoke(self):
        import repro

        result = repro.run_single("hmmer_like", "lru", 10_000,
                                  prefetcher="nextline")
        assert result.cores[0].ipc > 0
