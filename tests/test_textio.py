"""Tests for trace text I/O and trace transformations."""

from __future__ import annotations

import pytest

from repro.common.errors import TraceError
from repro.workloads.textio import (
    concatenate,
    downsample,
    interleave,
    load_text,
    save_text,
    window,
)

from conftest import make_trace


class TestTextRoundtrip:
    def test_roundtrip(self, tmp_path):
        trace = make_trace([0, 1, 2], pcs=[0x10, 0x20, 0x10],
                           writes=[True, False, False], gap=5)
        path = tmp_path / "trace.txt"
        save_text(trace, path)
        loaded = load_text(path)
        assert loaded.name == trace.name
        assert loaded.instruction_gap == 5
        assert loaded.addresses.tolist() == trace.addresses.tolist()
        assert loaded.pcs.tolist() == trace.pcs.tolist()
        assert loaded.is_write.tolist() == trace.is_write.tolist()

    def test_name_override(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_text(make_trace([0]), path)
        assert load_text(path, name="renamed").name == "renamed"

    def test_accepts_decimal_and_hex(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("R 64 16\nW 0x80 0x20\n")
        trace = load_text(path)
        assert trace.addresses.tolist() == [64, 128]
        assert trace.is_write.tolist() == [False, True]

    def test_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# a comment\n\nR 0x40 0x1\n")
        assert len(load_text(path)) == 1

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_text(tmp_path / "nope.txt")

    def test_rejects_bad_op(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("X 0x40 0x1\n")
        with pytest.raises(TraceError):
            load_text(path)

    def test_rejects_bad_fields(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("R 0x40\n")
        with pytest.raises(TraceError):
            load_text(path)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# nothing\n")
        with pytest.raises(TraceError):
            load_text(path)

    def test_rejects_binary_garbage(self, tmp_path):
        path = tmp_path / "binary.txt"
        path.write_bytes(b"\x80\x81\xfe R 0x40 0x1")
        with pytest.raises(TraceError, match="not a text trace"):
            load_text(path)

    def test_errors_carry_file_and_line(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("R 0x40 0x1\nR zap 0x1\n")
        with pytest.raises(TraceError, match=r"t\.txt:2"):
            load_text(path)

    def test_bad_gap_header_carries_line(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# instruction_gap: many\nR 0x40 0x1\n")
        with pytest.raises(TraceError, match=r"t\.txt:1"):
            load_text(path)


class TestWindow:
    def test_slices(self):
        trace = make_trace(list(range(10)))
        sliced = window(trace, 2, 3)
        assert sliced.addresses.tolist() == [128, 192, 256]

    def test_rejects_out_of_range(self):
        with pytest.raises(TraceError):
            window(make_trace([0, 1]), 1, 5)


class TestDownsample:
    def test_keeps_every_kth(self):
        trace = make_trace(list(range(10)), gap=1)
        sampled = downsample(trace, 2)
        assert len(sampled) == 5
        assert sampled.addresses.tolist() == trace.addresses[::2].tolist()

    def test_scales_instruction_gap(self):
        trace = make_trace(list(range(10)), gap=1)
        sampled = downsample(trace, 2)
        # 2 accesses x (1+1) instructions -> 1 access x (3+1).
        assert sampled.instruction_gap == 3

    def test_period_one_identity(self):
        trace = make_trace([0, 1])
        assert downsample(trace, 1) is trace

    def test_rejects_too_large_period(self):
        with pytest.raises(TraceError):
            downsample(make_trace([0, 1]), 5)


class TestMerge:
    def test_interleave_round_robin(self):
        a = make_trace([0, 1, 2])
        b = make_trace([10, 11, 12])
        merged = interleave([a, b])
        assert merged.addresses.tolist()[:4] == [0, 640, 64, 704]

    def test_interleave_truncates_to_shortest(self):
        a = make_trace([0, 1, 2, 3])
        b = make_trace([10])
        assert len(interleave([a, b])) == 2

    def test_concatenate(self):
        a = make_trace([0, 1])
        b = make_trace([5])
        joined = concatenate([a, b])
        assert joined.addresses.tolist() == [0, 64, 320]

    def test_empty_inputs_rejected(self):
        with pytest.raises(TraceError):
            interleave([])
        with pytest.raises(TraceError):
            concatenate([])
