"""Tests for the repro.bench suite: determinism, comparator, CLI.

The bench contract the CI gate relies on:

* same seed + same mode twice → identical *comparison payloads*
  (everything except the timing fields),
* payloads carry no absolute timestamps,
* ``bench compare`` exit codes are pinned: 0 ok / 1 regression /
  2 schema mismatch.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_SCHEMA_MISMATCH,
    benchmark_names,
    compare_payloads,
    comparison_payload,
    load_payload,
    parse_regress_threshold,
    run_suite,
    save_payload,
)

#: Tiny op scale so a full suite run stays test-fast.
SCALE = 0.02


def _tiny_suite(**kwargs):
    return run_suite(quick=True, repetitions=1, ops_scale=SCALE, **kwargs)


class TestSuiteDeterminism:
    def test_same_mode_twice_identical_comparison_payload(self):
        first = _tiny_suite()
        second = _tiny_suite()
        assert comparison_payload(first) == comparison_payload(second)

    def test_comparison_payload_strips_exactly_timing_fields(self):
        payload = _tiny_suite(names=["lru_access"])
        entry = payload["benchmarks"]["lru_access"]
        stripped = comparison_payload(payload)["benchmarks"]["lru_access"]
        assert set(entry) - set(stripped) == {"median_s", "ops_per_sec", "times_s"}
        assert stripped == {
            "ops": entry["ops"],
            "unit": "accesses",
            "repetitions": 1,
        }

    def test_no_absolute_timestamps_anywhere(self):
        # No field of the payload may encode wall-clock epoch time; a
        # 2001+ epoch second is > 1e9, far above any duration/op count
        # except the deliberate ops fields.
        payload = _tiny_suite(names=["lru_access"])
        text = json.dumps(comparison_payload(payload))
        assert "time" not in text and "date" not in text
        for value in comparison_payload(payload)["benchmarks"]["lru_access"].values():
            if isinstance(value, (int, float)):
                assert value < 1e9

    def test_quick_and_full_modes_differ(self):
        quick = _tiny_suite(names=["lru_access"])
        full = run_suite(
            quick=False, repetitions=1, ops_scale=SCALE, names=["lru_access"]
        )
        assert quick["mode"] == "quick" and full["mode"] == "full"
        assert (
            quick["benchmarks"]["lru_access"]["ops"]
            < full["benchmarks"]["lru_access"]["ops"]
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_suite(names=["nope"], ops_scale=SCALE, repetitions=1)

    def test_registry_contents(self):
        assert benchmark_names() == [
            "lru_access", "nucache_access", "nextuse_update",
            "vector_lru_access", "vector_lru_access_small",
            "fig5_sim", "vector_fig5_sim",
        ]


class TestCompareExitCodes:
    def _payload(self):
        return _tiny_suite(names=["lru_access", "nextuse_update"])

    def test_self_compare_is_ok(self):
        payload = self._payload()
        report = compare_payloads(payload, payload, 0.15)
        assert report.exit_code == EXIT_OK
        assert not any(row.regressed for row in report.rows)

    def test_regression_detected(self):
        baseline = self._payload()
        candidate = copy.deepcopy(baseline)
        entry = candidate["benchmarks"]["lru_access"]
        entry["ops_per_sec"] = entry["ops_per_sec"] * 0.5  # 50% slower
        report = compare_payloads(baseline, candidate, 0.15)
        assert report.exit_code == EXIT_REGRESSION
        assert [row.name for row in report.rows if row.regressed] == ["lru_access"]

    def test_speedup_never_fails(self):
        baseline = self._payload()
        candidate = copy.deepcopy(baseline)
        for entry in candidate["benchmarks"].values():
            entry["ops_per_sec"] *= 10.0
        assert compare_payloads(baseline, candidate, 0.15).exit_code == EXIT_OK

    def test_within_threshold_ok(self):
        baseline = self._payload()
        candidate = copy.deepcopy(baseline)
        entry = candidate["benchmarks"]["lru_access"]
        entry["ops_per_sec"] *= 0.9  # 10% slower, 15% allowed
        assert compare_payloads(baseline, candidate, 0.15).exit_code == EXIT_OK

    def test_schema_version_mismatch(self):
        baseline = self._payload()
        candidate = copy.deepcopy(baseline)
        candidate["schema_version"] = 99
        report = compare_payloads(baseline, candidate, 0.15)
        assert report.exit_code == EXIT_SCHEMA_MISMATCH
        assert any("schema_version" in message for message in report.errors)

    def test_mode_mismatch(self):
        baseline = self._payload()
        candidate = copy.deepcopy(baseline)
        candidate["mode"] = "full"
        assert compare_payloads(baseline, candidate).exit_code == EXIT_SCHEMA_MISMATCH

    def test_benchmark_set_mismatch(self):
        baseline = self._payload()
        candidate = copy.deepcopy(baseline)
        del candidate["benchmarks"]["lru_access"]
        assert compare_payloads(baseline, candidate).exit_code == EXIT_SCHEMA_MISMATCH

    def test_ops_mismatch_is_schema_error(self):
        baseline = self._payload()
        candidate = copy.deepcopy(baseline)
        candidate["benchmarks"]["lru_access"]["ops"] += 1
        report = compare_payloads(baseline, candidate)
        assert report.exit_code == EXIT_SCHEMA_MISMATCH
        assert any("ops mismatch" in message for message in report.errors)

    def test_render_mentions_verdict(self):
        payload = self._payload()
        assert "OK" in compare_payloads(payload, payload).render()


class TestThresholdParsing:
    @pytest.mark.parametrize(
        "raw,expected",
        [("15%", 0.15), ("0.15", 0.15), ("40%", 0.40), ("0", 0.0), (" 5% ", 0.05)],
    )
    def test_accepted_forms(self, raw, expected):
        assert parse_regress_threshold(raw) == pytest.approx(expected)

    @pytest.mark.parametrize("raw", ["", "abc", "150%", "1.5", "-10%"])
    def test_rejected_forms(self, raw):
        with pytest.raises(ValueError):
            parse_regress_threshold(raw)


class TestPayloadIO:
    def test_save_load_round_trip(self, tmp_path):
        payload = _tiny_suite(names=["nextuse_update"])
        path = tmp_path / "BENCH_x.json"
        save_payload(payload, str(path))
        assert load_payload(str(path)) == payload

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="payload"):
            load_payload(str(path))


class TestBenchCLI:
    def test_bench_run_and_compare_ok(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setattr(
            "repro.bench.suite.QUICK_REPETITIONS", 1, raising=True
        )
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["bench", "--quick", "--only", "nextuse_update",
                     "-o", str(a)]) == 0
        assert main(["bench", "run", "--quick", "--only", "nextuse_update",
                     "-o", str(b)]) == 0
        capsys.readouterr()
        assert main(["bench", "compare", str(a), str(b),
                     "--max-regress", "99%"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "nextuse_update" in out and "OK" in out

    def test_bench_compare_schema_mismatch_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        payload = _tiny_suite(names=["nextuse_update"])
        save_payload(payload, str(a))
        bad = copy.deepcopy(payload)
        bad["schema_version"] = 99
        save_payload(bad, str(b))
        assert main(["bench", "compare", str(a), str(b)]) == EXIT_SCHEMA_MISMATCH

    def test_bench_compare_missing_file_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "compare", str(tmp_path / "no.json"),
                     str(tmp_path / "pe.json")]) == 2

    def test_bench_unknown_only_exit_2(self, capsys):
        from repro.cli import main

        assert main(["bench", "--quick", "--only", "bogus"]) == 2
