"""Tests for the deterministic fuzz harness (repro.check.fuzz)."""

from __future__ import annotations

import json

import pytest

from repro.check import fuzz
from repro.common.errors import ReproError


class TestGrid:
    def test_quick_grid_covers_required_families(self):
        cases = fuzz.default_grid(quick=True)
        policies = {case.policy for case in cases}
        assert policies == set(fuzz.QUICK_POLICIES)
        assert all(case.accesses == 1200 for case in cases)

    def test_full_grid_is_a_superset(self):
        quick = {c.policy for c in fuzz.default_grid(quick=True)}
        full = {c.policy for c in fuzz.default_grid(quick=False)}
        assert quick < full

    def test_policy_and_access_overrides(self):
        cases = fuzz.default_grid(quick=True, policies=("lru",), accesses=99)
        assert {c.policy for c in cases} == {"lru"}
        assert all(c.accesses == 99 for c in cases)

    def test_partitioned_needs_a_way_per_core(self):
        for case in fuzz.default_grid(quick=False):
            assert case.ways - case.deli_ways >= 2


class TestStreams:
    def test_stream_is_deterministic(self):
        case = fuzz.FuzzCase(policy="lru", accesses=200)
        assert fuzz.generate_stream(case) == fuzz.generate_stream(case)

    def test_seed_changes_the_stream(self):
        a = fuzz.generate_stream(fuzz.FuzzCase(policy="lru", accesses=200))
        b = fuzz.generate_stream(
            fuzz.FuzzCase(policy="lru", accesses=200, seed=7)
        )
        assert a != b

    def test_case_round_trips_through_json(self):
        case = fuzz.FuzzCase(policy="nucache", sets=8, ways=8, deli_ways=3,
                             seed=42)
        assert fuzz.FuzzCase.from_dict(
            json.loads(json.dumps(case.to_dict()))
        ) == case


class TestShrinking:
    def test_shrinks_to_the_culprit(self):
        stream = [(block, 0, 0x400000, False) for block in range(40)]
        culprit = (17, 0, 0x400000, False)

        minimal = fuzz.shrink_stream(stream, lambda s: culprit in s)
        assert minimal == [culprit]

    def test_budget_bounds_replays(self):
        replays = []

        def still_fails(candidate):
            replays.append(1)
            return True  # always reproduces; only the budget stops us

        fuzz.shrink_stream([(i, 0, 0, False) for i in range(64)],
                           still_fails, budget=10)
        assert len(replays) <= 10


class TestReproducers:
    def test_forced_violation_writes_replayable_reproducer(self, tmp_path):
        case = fuzz.FuzzCase(policy="nucache", accesses=600)
        failure = fuzz.run_case(case, store_base=tmp_path, corrupt_after=300)
        assert failure is not None
        assert len(failure.stream) <= 600  # shrunk, never grown
        path = failure.reproducer_path
        assert path is not None and path.parent == tmp_path / "check"

        loaded_case, stream, corrupt_after = fuzz.load_reproducer(path)
        assert loaded_case == case
        assert stream == failure.stream
        assert fuzz.replay_stream(loaded_case, stream, corrupt_after) is not None

    def test_clean_case_writes_nothing(self, tmp_path):
        case = fuzz.FuzzCase(policy="lru", accesses=300)
        assert fuzz.run_case(case, store_base=tmp_path) is None
        assert not (tmp_path / "check").exists() or not list(
            (tmp_path / "check").iterdir()
        )

    def test_unreadable_reproducer_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        with pytest.raises(ReproError, match="unreadable reproducer"):
            fuzz.load_reproducer(path)
        path.write_text(json.dumps({"schema": 1}))  # missing keys
        with pytest.raises(ReproError):
            fuzz.load_reproducer(path)


class TestRunCheck:
    def test_small_sweep_is_clean(self):
        report = fuzz.run_check(quick=True, policies=("lru", "nucache"),
                                accesses=400)
        assert report.ok
        assert report.cases == 4  # two policies x two quick geometries

    def test_forced_violation_produces_exactly_one_failure(self, tmp_path,
                                                           monkeypatch):
        from repro.exec.store import STORE_ENV_VAR

        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path))
        lines = []
        report = fuzz.run_check(quick=True, policies=("nucache",),
                                accesses=400, force_violation=True,
                                progress=lines.append)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.reproducer_path is not None
        assert failure.reproducer_path.exists()
        assert any("DIVERGED" in line for line in lines)
