"""Tests for the observability layer: tracer, metrics, profiling, timings."""

from __future__ import annotations

import json
import os

import pytest

from repro.common.errors import ReproError
from repro.exec import context as exec_context
from repro.exec.store import STORE_ENV_VAR
from repro.obs.metrics import (
    BUCKET_LAYOUTS,
    MetricsRegistry,
    active_registry,
    set_registry,
)
from repro.obs.trace import (
    TRACE_ENV_VAR,
    Tracer,
    active_tracer,
    reset_tracer,
    set_tracer,
)


@pytest.fixture(autouse=True)
def _isolated_obs(tmp_path, monkeypatch):
    """Each test gets its own store base and a clean tracer/registry."""
    monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "base"))
    monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
    reset_tracer()
    set_registry(None)
    exec_context.reset()
    yield
    reset_tracer()
    set_registry(None)
    exec_context.reset()


def _records(path):
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_records_parent_and_depth(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("tick", n=1)
        tracer.close()
        records = _records(tracer.path)
        begins = {r["name"]: r for r in records if r["type"] == "begin"}
        assert begins["outer"]["parent"] is None
        assert begins["outer"]["depth"] == 0
        assert begins["inner"]["parent"] == outer.span_id
        assert begins["inner"]["depth"] == 1
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["span"] == inner.span_id
        ends = [r for r in records if r["type"] == "end"]
        # Inner closes before outer, neither aborted.
        assert [r["name"] for r in ends] == ["inner", "outer"]
        assert not any(r.get("aborted") for r in ends)
        assert all(r["dur"] >= 0 for r in ends)

    def test_ring_flushes_at_capacity(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl", ring_capacity=4)
        for n in range(3):
            tracer.counter("c", n)
        assert not tracer.path.exists()  # still buffered
        tracer.counter("c", 3)  # fourth record fills the ring
        assert len(_records(tracer.path)) == 4

    def test_top_level_span_end_flushes(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with tracer.span("run"):
            pass
        assert [r["type"] for r in _records(tracer.path)] == ["begin", "end"]

    def test_close_aborts_open_spans_and_flushes(self, tmp_path):
        # The flush-on-interrupt guarantee: a tracer closed with spans
        # still open (SIGINT, crash) writes aborted end records so the
        # partial trace still renders.
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.span("outer")
        tracer.span("inner")
        tracer.close()
        ends = [r for r in _records(tracer.path) if r["type"] == "end"]
        assert [r["name"] for r in ends] == ["inner", "outer"]  # LIFO
        assert all(r["aborted"] for r in ends)
        tracer.close()  # idempotent
        tracer.event("late")  # ignored after close
        assert len(_records(tracer.path)) == 4

    def test_context_manager_marks_exception_aborted(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (end,) = [r for r in _records(tracer.path) if r["type"] == "end"]
        assert end["aborted"] is True

    def test_active_tracer_disabled_is_cached_none(self):
        assert active_tracer() is None
        assert active_tracer() is None  # cached path

    def test_active_tracer_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, str(tmp_path / "traces"))
        reset_tracer()
        tracer = active_tracer()
        assert tracer is not None
        assert tracer.path.name == f"proc-{os.getpid()}.jsonl"
        assert active_tracer() is tracer  # same object on every call
        reset_tracer()
        monkeypatch.delenv(TRACE_ENV_VAR)
        assert active_tracer() is None

    def test_set_tracer_overrides(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        set_tracer(tracer)
        assert active_tracer() is tracer
        set_tracer(None)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_basics(self):
        registry = MetricsRegistry()
        registry.counter("jobs", policy="lru").inc()
        registry.counter("jobs", policy="lru").inc(2)
        registry.gauge("depth").set(3.5)
        payload = registry.to_dict()
        assert payload["counters"] == {"jobs{policy=lru}": 3}
        assert payload["gauges"] == {"depth": 3.5}
        with pytest.raises(ReproError, match="cannot decrease"):
            registry.counter("jobs", policy="lru").inc(-1)

    def test_histogram_bucketing_is_deterministic(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("rates", "ratio")
        # Bounds are inclusive upper edges: v <= bound lands in that
        # bucket; anything above the last bound is overflow.
        for value in (0.0, 0.1, 0.10001, 0.95, 1.0, 1.5):
            histogram.observe(value)
        assert len(histogram.counts) == len(BUCKET_LAYOUTS["ratio"]) + 1
        assert histogram.counts[0] == 2  # 0.0 and 0.1
        assert histogram.counts[1] == 1  # 0.10001
        assert histogram.counts[-2] == 2  # 0.95 and 1.0 in the <=1.0 bucket
        assert histogram.counts[-1] == 1  # 1.5 overflows
        assert histogram.count == 6
        assert histogram.sum == pytest.approx(3.65001)

    def test_histogram_unknown_layout_rejected(self):
        with pytest.raises(ReproError, match="unknown histogram layout"):
            MetricsRegistry().histogram("x", "nope")

    def test_series_kind_and_layout_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError, match="already registered"):
            registry.gauge("x")
        registry.histogram("h", "ipc")
        with pytest.raises(ReproError, match="layout"):
            registry.histogram("h", "mpki")

    def test_same_labels_any_order_same_series(self):
        registry = MetricsRegistry()
        registry.counter("x", a="1", b="2").inc()
        registry.counter("x", b="2", a="1").inc()
        assert registry.to_dict()["counters"] == {"x{a=1,b=2}": 2}

    def test_export_is_byte_stable(self, tmp_path):
        def build():
            registry = MetricsRegistry()
            registry.counter("jobs", policy="nucache").inc(7)
            registry.histogram("ipc", "ipc").observe(0.42)
            registry.gauge("g").set(1.0)
            return registry

        first = build().export(tmp_path / "a.json")
        second = build().export(tmp_path / "b.json")
        assert first.read_bytes() == second.read_bytes()

    def test_active_registry_roundtrip(self):
        assert active_registry() is None
        registry = MetricsRegistry()
        set_registry(registry)
        assert active_registry() is registry


# ----------------------------------------------------------------------
# Instrumentation: engine spans, scheduler lifecycle, collection path
# ----------------------------------------------------------------------


class TestInstrumentation:
    def test_engine_emits_phases_and_epochs(self, tmp_path):
        from repro.sim.runner import run_single

        tracer = Tracer(tmp_path / "t.jsonl")
        set_tracer(tracer)
        try:
            run_single("art_like", "nucache", 6_000)
        finally:
            set_tracer(None)
            tracer.close()
        records = _records(tracer.path)
        names = {(r["type"], r["name"]) for r in records}
        assert ("begin", "sim.run") in names
        assert ("end", "sim.run") in names
        phases = {
            r["phase"] for r in records
            if r["type"] == "event" and r["name"] == "sim.phase"
        }
        assert phases == {"warmup", "measure"}
        counters = [r for r in records if r["type"] == "counter"]
        assert counters and all(r["name"] == "llc.counters" for r in counters)
        # The counter value is the step count; snapshot fields (incl.
        # the NUcache-specific ones) ride along as record fields.
        assert counters[-1]["value"] > 0
        assert "deli_hits" in counters[-1]
        assert "misses" in counters[-1]

    def test_traced_run_results_identical(self, tmp_path):
        from repro.sim.runner import run_single

        plain = run_single("art_like", "lru", 6_000).to_dict()
        tracer = Tracer(tmp_path / "t.jsonl")
        set_tracer(tracer)
        try:
            traced = run_single("art_like", "lru", 6_000).to_dict()
        finally:
            set_tracer(None)
            tracer.close()
        assert traced == plain

    def test_scheduler_emits_job_lifecycle(self, tmp_path, monkeypatch):
        from repro.exec import SimJob

        monkeypatch.setenv(TRACE_ENV_VAR, str(tmp_path / "traces"))
        reset_tracer()
        jobs = [
            SimJob.single("art_like", policy, 4_000)
            for policy in ("lru", "nucache")
        ]
        exec_context.run_jobs(jobs, label="unit")
        exec_context.run_jobs(jobs, label="unit")  # cache hits this time
        tracer = active_tracer()
        tracer.flush()
        records = _records(tracer.path)
        job_events = [
            r for r in records
            if r["type"] == "event" and r["name"] == "exec.job"
        ]
        statuses = [r["status"] for r in job_events]
        assert statuses.count("queued") == 2
        assert statuses.count("completed") == 2
        assert statuses.count("cached") == 2
        batch_ends = [
            r for r in records
            if r["type"] == "event" and r["name"] == "exec.batch_end"
        ]
        assert [r["status"] for r in batch_ends] == ["ok", "ok"]
        assert all(r["total"] == 2 for r in batch_ends)
        # The executed batch also carries per-job spans.
        spans = [r for r in records if r["type"] == "end" and r["name"] == "exec.job"]
        assert len(spans) == 2

    def test_run_jobs_feeds_registry(self):
        from repro.exec import SimJob

        registry = MetricsRegistry()
        set_registry(registry)
        jobs = [
            SimJob.single("art_like", policy, 4_000)
            for policy in ("lru", "nucache")
        ]
        exec_context.run_jobs(jobs)
        payload = registry.to_dict()
        assert payload["counters"]["sim.jobs{policy=lru}"] == 1
        assert payload["counters"]["sim.jobs{policy=nucache}"] == 1
        assert payload["counters"]["exec.jobs{status=completed}"] == 2
        assert payload["histograms"]["sim.core_ipc{policy=lru}"]["count"] == 1


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------


class TestProfile:
    def test_profiled_execute_dumps_and_merges(self, tmp_path):
        from repro.exec import SimJob, execute_job
        from repro.obs.profile import (
            ProfiledExecute,
            hot_functions,
            merge_profiles,
            render_hot_table,
        )

        wrapper = ProfiledExecute(execute_job, tmp_path / "profiles")
        job = SimJob.single("art_like", "lru", 4_000)
        plain = execute_job(job).to_dict()
        profiled = wrapper(job).to_dict()
        assert profiled == plain  # profiling never touches the result
        wrapper(job)
        dumps = list((tmp_path / "profiles").glob("*.pstats"))
        assert len(dumps) == 2
        stats = merge_profiles(tmp_path / "profiles")
        assert stats is not None
        rows = hot_functions(stats, top=5)
        assert rows and any("engine" in row[0] for row in rows)
        table = render_hot_table(stats, top=5, title="unit")
        assert table.startswith("unit")

    def test_merge_profiles_empty_and_torn(self, tmp_path):
        from repro.obs.profile import merge_profiles

        assert merge_profiles(tmp_path / "missing") is None
        (tmp_path / "torn.pstats").write_bytes(b"\x00garbage")
        assert merge_profiles(tmp_path) is None


# ----------------------------------------------------------------------
# Timings rendering
# ----------------------------------------------------------------------


class TestTimings:
    def test_render_timings_merges_journal_and_trace(self):
        from repro.exec.journal import RunSummary
        from repro.obs.timings import render_timings

        summary = RunSummary(run_id="r1", path=None, status="completed")
        records = [
            {"record": "experiment_start", "experiment": "fig5"},
            {
                "record": "batch",
                "label": "grid",
                "report": {"wall_time": 2.5, "completed": 2, "cached": 1},
                "outcomes": {
                    "k1" * 32: {
                        "status": "completed",
                        "label": "slow job",
                        "timings": [2.0],
                    },
                    "k2" * 32: {"status": "cached", "timings": []},
                },
            },
            {"record": "experiment_end", "experiment": "fig5",
             "status": "ok", "elapsed": 3.0},
        ]
        trace_records = [
            {"type": "event", "name": "sim.phase", "phase": "warmup", "dur": 1.0},
            {"type": "event", "name": "sim.phase", "phase": "measure", "dur": 3.0},
            {"type": "event", "name": "nucache.epoch"},
            {"type": "end", "name": "exec.job", "dur": 4.2},
        ]
        text = render_timings(summary, records, trace_records)
        assert "fig5 batch 1 [grid]: 2.50s" in text
        assert "2.00s  slow job" in text
        assert "fig5: ok in 3.00s" in text
        assert "warmup" in text and "(25%)" in text
        assert "measure" in text and "(75%)" in text
        assert "1 NUcache selection rotations" in text
        assert "job wall" in text

    def test_render_timings_without_trace(self):
        from repro.exec.journal import RunSummary
        from repro.obs.timings import render_timings

        summary = RunSummary(run_id="r1", path=None, status="completed")
        text = render_timings(summary, [], [])
        assert "no trace records" in text

    def test_load_trace_records_tolerates_torn_lines(self, tmp_path):
        from repro.obs.timings import load_trace_records

        trace_dir = tmp_path / "t"
        trace_dir.mkdir()
        (trace_dir / "proc-1.jsonl").write_text(
            '{"type": "event", "name": "sim.phase"}\n{"type": "ev',
            encoding="utf-8",
        )
        records = load_trace_records(trace_dir)
        assert len(records) == 1
        assert load_trace_records(tmp_path / "missing") == []


# ----------------------------------------------------------------------
# CLI integration: --trace / --profile / --timings, golden metrics.json
# ----------------------------------------------------------------------


def _run_id_from(stderr: str) -> str:
    return next(
        line.split("id=")[1].split()[0]
        for line in stderr.splitlines()
        if "[run] id=" in line
    )


class TestCliObs:
    def test_traced_run_stdout_identical_and_golden_metrics(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.cli import main
        from repro.obs.timings import trace_dir_for

        monkeypatch.setenv("REPRO_SCALE", "0.02")
        # --no-cache both times: with a warm store the second run's
        # exec.jobs counters would say "cached" instead of "completed",
        # and the goal here is byte-equality of metrics.json.
        assert main(["run", "fig5", "--no-cache"]) == 0
        plain = capsys.readouterr()

        assert main(["run", "fig5", "--no-cache", "--trace"]) == 0
        first = capsys.readouterr()
        assert first.out == plain.out  # tracing changes no simulated number
        first_metrics = trace_dir_for(_run_id_from(first.err)) / "metrics.json"

        assert main(["run", "fig5", "--no-cache", "--trace"]) == 0
        second = capsys.readouterr()
        assert second.out == plain.out
        second_metrics = trace_dir_for(_run_id_from(second.err)) / "metrics.json"

        # Golden byte-stability: two runs of the same code, same bytes.
        assert first_metrics.read_bytes() == second_metrics.read_bytes()
        payload = json.loads(first_metrics.read_text(encoding="utf-8"))
        assert payload["counters"]["sim.jobs{policy=nucache}"] > 0

        # The trace directory holds at least the main process's file.
        trace_dir = trace_dir_for(_run_id_from(first.err))
        assert list(trace_dir.glob("proc-*.jsonl"))

        # Tracing is fully torn down after the run.
        assert TRACE_ENV_VAR not in os.environ
        assert active_tracer() is None
        assert active_registry() is None

    def test_runs_show_timings(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["run", "fig5", "--no-cache", "--trace"]) == 0
        run_id = _run_id_from(capsys.readouterr().err)
        assert main(["runs", "show", run_id, "--timings"]) == 0
        shown = capsys.readouterr().out
        assert f"timings for {run_id}" in shown
        assert "scheduler wall" in shown
        assert "simulation phases" in shown
        assert "warmup" in shown and "measure" in shown

    def test_profile_run_prints_hot_table(self, capsys, monkeypatch):
        from repro.cli import main
        from repro.obs.timings import trace_dir_for

        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert main(["run", "fig5", "--no-cache", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "[profile] fig5" in captured.err
        assert "cum s" in captured.err
        run_id = _run_id_from(captured.err)
        dumps = list(
            (trace_dir_for(run_id) / "profiles" / "fig5").glob("*.pstats")
        )
        assert dumps
        # Profiling is torn down after the run.
        assert exec_context.current().profile_dir is None
