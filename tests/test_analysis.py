"""Tests for the reuse-distance analyzer and workload characterization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.characterize import (
    characterize_benchmark,
    characterize_trace,
    lru_capacity_for_hit_ratio,
)
from repro.analysis.reuse import COLD_DISTANCE, analyze, reuse_distances

from conftest import make_trace


def brute_force_distances(blocks):
    """O(n^2) reference: distinct blocks since the previous touch."""
    result = []
    for index, block in enumerate(blocks):
        previous = None
        for back in range(index - 1, -1, -1):
            if blocks[back] == block:
                previous = back
                break
        if previous is None:
            result.append(COLD_DISTANCE)
        else:
            result.append(len(set(blocks[previous + 1:index])))
    return result


class TestReuseDistances:
    def test_cold_accesses(self):
        assert reuse_distances([1, 2, 3]).tolist() == [COLD_DISTANCE] * 3

    def test_immediate_reuse(self):
        assert reuse_distances([1, 1]).tolist() == [COLD_DISTANCE, 0]

    def test_classic_example(self):
        # a b c b a : b at distance 1, a at distance 2
        distances = reuse_distances([1, 2, 3, 2, 1])
        assert distances.tolist() == [COLD_DISTANCE, COLD_DISTANCE, COLD_DISTANCE, 1, 2]

    def test_repeated_block_not_double_counted(self):
        # a b b a : only one distinct block between the two a's.
        assert reuse_distances([1, 2, 2, 1]).tolist()[-1] == 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=120))
    def test_matches_bruteforce(self, blocks):
        fast = reuse_distances(blocks).tolist()
        assert fast == brute_force_distances(blocks)


class TestReuseProfile:
    def test_miss_ratio_loop(self):
        # A loop of 4 blocks repeated: all warm distances are 3.
        blocks = [0, 1, 2, 3] * 10
        profile = analyze(blocks)
        assert profile.miss_ratio(4) == pytest.approx(4 / 40)  # cold only
        assert profile.miss_ratio(3) == 1.0  # loop bigger than cache

    def test_miss_ratio_monotone_in_capacity(self):
        blocks = ([0, 1, 2, 3, 4, 5] * 5) + list(range(100, 130))
        profile = analyze(blocks)
        ratios = profile.miss_ratio_curve([1, 2, 4, 8, 16, 32])
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_histogram_partitions_accesses(self):
        blocks = [0, 1, 0, 2, 0, 3, 0]
        profile = analyze(blocks)
        histogram = profile.histogram([1, 2])
        assert histogram.sum() == len(blocks)
        assert histogram[0] == 4  # cold

    def test_percentile(self):
        profile = analyze([0, 1, 2, 3] * 10)
        assert profile.percentile(50) == 3

    def test_percentile_no_reuse(self):
        assert analyze([0, 1, 2]).percentile(50) is None

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            analyze([0]).miss_ratio(0)

    def test_footprint(self):
        assert analyze([5, 5, 6, 7, 6]).footprint == 3


class TestCapacitySearch:
    def test_finds_loop_capacity(self):
        profile = analyze([0, 1, 2, 3] * 50)
        # 90% hit ratio achievable exactly once the loop fits.
        assert lru_capacity_for_hit_ratio(profile, 0.9) == 4

    def test_stream_unreachable(self):
        profile = analyze(list(range(1000)))
        assert lru_capacity_for_hit_ratio(profile, 0.5, max_capacity=64) == 64

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            lru_capacity_for_hit_ratio(analyze([0]), 0.0)


class TestCharacterize:
    def test_trace_character(self):
        trace = make_trace([0, 1, 0, 1, 2], pcs=[7, 8, 7, 8, 9],
                           writes=[True, False, False, False, False])
        character = characterize_trace(trace)
        assert character.accesses == 5
        assert character.footprint_blocks == 3
        assert character.unique_pcs == 3
        assert character.write_fraction == pytest.approx(0.2)
        assert "blocks" in character.describe()
        assert character.pc_access_shares[0][1] == pytest.approx(0.4)

    def test_benchmark_classes_have_expected_curves(self):
        # The friendly benchmark nearly fits 4096 lines; streaming never does.
        friendly = characterize_benchmark("twolf_like", accesses=20_000)
        streaming = characterize_benchmark("libquantum_like", accesses=20_000)
        assert friendly.miss_ratio_curve[4096] < 0.15
        assert streaming.miss_ratio_curve[8192] > 0.6

    def test_delinquent_loop_is_marginal(self):
        """The delinquent class is calibrated to miss at the LLC slice
        but be capturable within ~2x — verify with exact analysis."""
        character = characterize_benchmark("art_like", accesses=30_000)
        assert character.miss_ratio_curve[4096] > 0.4
        assert character.miss_ratio_curve[8192] < character.miss_ratio_curve[2048]
