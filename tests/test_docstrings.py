"""Docstring coverage gate over the exec and obs public APIs.

These layers carry the repo's execution and observability contracts —
content-addressed caching, resume semantics, zero-cost tracing — so
their public surface must stay documented.  The checker is the local
stdlib-only tool (``tools/check_docstrings.py``); CI runs ``interrogate``
on top for coverage percentages.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docstrings import iter_python_files, missing_docstrings  # noqa: E402


def test_exec_and_obs_public_apis_are_documented():
    offenders = []
    for path in iter_python_files(
        [str(REPO_ROOT / "src/repro/exec"), str(REPO_ROOT / "src/repro/obs")]
    ):
        offenders.extend(
            f"{path.relative_to(REPO_ROOT)}:{lineno}: {description}"
            for lineno, description in missing_docstrings(path)
        )
    assert not offenders, (
        "public definitions lack docstrings:\n" + "\n".join(offenders)
    )


def test_checker_flags_missing_docstrings(tmp_path):
    bare = tmp_path / "bare.py"
    bare.write_text(
        "def public():\n    pass\n\n"
        "def _private():\n    pass\n\n"
        "class Thing:\n"
        '    """Documented."""\n'
        "    def method(self):\n        pass\n"
        "    def __repr__(self):\n        return ''\n",
        encoding="utf-8",
    )
    found = missing_docstrings(bare)
    descriptions = {description for _lineno, description in found}
    # Module, the public def, and the public method — not the private
    # def and not the dunder.
    assert descriptions == {"module", "def public", "def Thing.method"}
