"""Backend contract tests for the pluggable result store.

Every test in :class:`TestStoreContract` runs against every backend —
the filesystem store, the sqlite store, and the networked store (a live
in-test server on an ephemeral port) must be observably
interchangeable: same hit/miss behavior, same validation and quarantine
semantics, same lease protocol, same maintenance operations.  Backend
mechanics that cannot be expressed portably (fsync ordering, temp-file
debris, WAL busy retries, reconnect machinery) get their own
backend-specific classes below and in ``test_net_store.py``.
"""

from __future__ import annotations

import errno
import json
import os
import time

import pytest

from repro.common.errors import StoreError
from repro.exec import SimJob, execute_job
from repro.exec.stores import (
    BACKENDS,
    FileResultStore,
    NetResultStore,
    SqliteResultStore,
    from_url,
    make_store,
)
from repro.exec.stores.base import STORE_BACKEND_ENV_VAR
from repro.exec.stores.net import StoreServer

ACCESSES = 4_000


def _make_store(backend: str, base):
    return BACKENDS[backend](base)


@pytest.fixture(params=sorted(BACKENDS))
def any_store(request, tmp_path):
    """One store per registered backend, rooted in a fresh tmpdir.

    The ``net`` flavor runs the full client/server stack: a live
    :class:`StoreServer` (fs-backed) on an ephemeral port, so the shared
    contract exercises the wire protocol unchanged.
    """
    if request.param == "net":
        server = StoreServer(FileResultStore(tmp_path / "store"), port=0)
        server.start()
        host, port = server.address
        client = NetResultStore(f"{host}:{port}")
        yield client
        client.close()
        server.close()
        return
    yield _make_store(request.param, tmp_path / "store")


def _job(seed: int = 1) -> SimJob:
    return SimJob.single("hmmer_like", "lru", ACCESSES, seed=seed)


# ----------------------------------------------------------------------
# The portable contract (parametrized over every backend)
# ----------------------------------------------------------------------


class TestStoreContract:
    def test_miss_then_hit_round_trip(self, any_store):
        job = _job()
        assert any_store.get(job) is None
        assert job not in any_store
        result = execute_job(job)
        any_store.put(job, result)
        assert job in any_store
        assert any_store.get(job) == result

    def test_truncated_entry_quarantined_never_served(self, any_store):
        job = _job()
        any_store.put(job, execute_job(job))
        assert any_store.corrupt_entry(job.key(), mode="truncate")
        assert any_store.get(job) is None
        assert any_store.stats().quarantined == 1
        assert any_store.get(job) is None  # stays a miss, not resurrected

    def test_semantic_corruption_quarantined(self, any_store):
        """Parsable JSON with impossible counters must not be served."""
        job = _job()
        any_store.put(job, execute_job(job))
        assert any_store.corrupt_entry(job.key(), mode="semantic")
        assert any_store.get(job) is None
        assert any_store.stats().quarantined == 1
        assert list(any_store.quarantined_entries())

    def test_corrupt_entry_without_entry_reports_false(self, any_store):
        assert not any_store.corrupt_entry("0" * 64)

    def test_put_after_quarantine_recovers(self, any_store):
        job = _job()
        result = execute_job(job)
        any_store.put(job, result)
        any_store.corrupt_entry(job.key())
        assert any_store.get(job) is None
        any_store.put(job, result)
        assert any_store.get(job) == result
        assert any_store.stats().quarantined == 1  # kept for post-mortem

    def test_simulated_crash_mid_put_publishes_nothing(self, any_store):
        job = _job()
        with pytest.raises(StoreError):
            any_store.simulate_crash_mid_put(job, execute_job(job))
        assert any_store.get(job) is None
        assert any_store.stats().entries == 0
        # The store stays fully usable afterwards.
        any_store.put(job, execute_job(job))
        assert any_store.get(job) is not None

    def test_lease_acquire_contention_release(self, any_store):
        key = _job().key()
        lease = any_store.acquire_lease(key, ttl=30.0)
        assert lease is not None and not lease.takeover
        assert any_store.acquire_lease(key, ttl=30.0) is None  # held
        assert any_store.counters.lease_contentions == 1
        assert any_store.renew_lease(lease)
        assert any_store.release_lease(lease)
        again = any_store.acquire_lease(key, ttl=30.0)
        assert again is not None and not again.takeover

    def test_stale_lease_taken_over(self, any_store, monkeypatch):
        import repro.exec.stores.fs as fs_mod
        import repro.exec.stores.net as net_mod
        import repro.exec.stores.sqlite as sq_mod

        key = _job().key()
        # A foreign process takes the lease, then crashes (no heartbeat).
        holder_mod = {
            "fs": fs_mod, "sqlite": sq_mod, "net": net_mod,
        }[any_store.backend]
        monkeypatch.setattr(holder_mod, "lease_owner_id", lambda: "ghost:999")
        crashed = any_store.acquire_lease(key, ttl=0.05)
        monkeypatch.undo()
        assert crashed is not None and crashed.owner == "ghost:999"
        time.sleep(0.1)
        taken = any_store.acquire_lease(key, ttl=30.0)
        assert taken is not None and taken.takeover
        assert taken.owner != "ghost:999"
        assert any_store.counters.stale_takeovers == 1
        # The displaced holder can no longer renew or release.
        assert not any_store.renew_lease(crashed)
        assert not any_store.release_lease(crashed)

    def test_active_leases_census(self, any_store):
        keys = sorted(_job(seed).key() for seed in (1, 2))
        any_store.acquire_lease(keys[0], ttl=30.0)
        any_store.acquire_lease(keys[1], ttl=0.05)
        time.sleep(0.1)
        census = dict(
            (key, is_stale) for key, _owner, is_stale in any_store.active_leases()
        )
        assert census == {keys[0]: False, keys[1]: True}
        stats = any_store.stats()
        assert stats.leases_active == 1
        assert stats.leases_stale == 1

    def test_prune_sweeps_stale_leases_only(self, any_store):
        live_key = _job(1).key()
        stale_key = _job(2).key()
        live = any_store.acquire_lease(live_key, ttl=30.0)
        any_store.acquire_lease(stale_key, ttl=0.05)
        time.sleep(0.1)
        any_store.prune(keep=100)
        held = {key for key, _owner, _stale in any_store.active_leases()}
        assert held == {live_key}
        assert any_store.release_lease(live)

    def test_clear_drops_entries_and_leases(self, any_store):
        job = _job()
        any_store.put(job, execute_job(job))
        any_store.acquire_lease(job.key(), ttl=30.0)
        assert any_store.clear() == 1
        assert any_store.stats().entries == 0
        assert any_store.active_leases() == []

    def test_prune_keep(self, any_store):
        result = execute_job(_job())
        for seed in range(5):
            any_store.put(_job(seed), result)
        assert any_store.prune(keep=2) == 3
        assert any_store.stats().entries == 2

    def test_health_is_deterministic_and_complete(self, any_store):
        census = any_store.health()
        assert census == {
            "busy_retries": 0,
            "lease_contentions": 0,
            "leases_active": 0,
            "leases_stale": 0,
            "reconnects": 0,
            "retried_requests": 0,
            "stale_takeovers": 0,
        }
        line = any_store.describe_health()
        assert line == (
            f"robustness [{any_store.backend}]: busy_retries=0 "
            "lease_contentions=0 leases_active=0 leases_stale=0 "
            "reconnects=0 retried_requests=0 stale_takeovers=0"
        )

    def test_stats_names_backend(self, any_store):
        assert any_store.stats().backend == any_store.backend


# ----------------------------------------------------------------------
# Backend selection: make_store / from_url / $REPRO_STORE
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_default_is_fs(self, monkeypatch):
        monkeypatch.delenv(STORE_BACKEND_ENV_VAR, raising=False)
        assert isinstance(make_store(), FileResultStore)

    def test_env_selects_sqlite(self, monkeypatch):
        monkeypatch.setenv(STORE_BACKEND_ENV_VAR, "sqlite")
        assert isinstance(make_store(), SqliteResultStore)

    def test_spec_overrides_env(self, monkeypatch):
        monkeypatch.setenv(STORE_BACKEND_ENV_VAR, "sqlite")
        assert isinstance(make_store("fs"), FileResultStore)

    def test_unknown_backend_rejected(self):
        with pytest.raises(StoreError, match="accepted forms.*net://HOST:PORT"):
            make_store("redis")

    def test_url_roots_fs_store(self, tmp_path):
        store = from_url(f"fs://{tmp_path / 'cache'}")
        assert isinstance(store, FileResultStore)
        assert store.base == tmp_path / "cache"

    def test_url_roots_sqlite_store(self, tmp_path):
        store = from_url(f"sqlite://{tmp_path / 'cache'}")
        assert isinstance(store, SqliteResultStore)
        assert store.path == tmp_path / "cache" / "store.sqlite"

    def test_url_names_sqlite_db_file(self, tmp_path):
        store = from_url(f"sqlite://{tmp_path / 'mine.sqlite'}")
        assert store.path == tmp_path / "mine.sqlite"
        assert store.base == tmp_path

    def test_url_without_scheme_rejected(self):
        with pytest.raises(
            StoreError, match=r"no scheme.*accepted forms.*fs://PATH"
        ):
            from_url("/no/scheme/here")

    def test_url_unknown_scheme_rejected(self):
        with pytest.raises(
            StoreError, match=r"unknown store backend 'redis'.*accepted forms"
        ):
            from_url("redis://somewhere")

    def test_make_store_accepts_urls(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_BACKEND_ENV_VAR, raising=False)
        store = make_store(f"sqlite://{tmp_path / 'cache'}")
        assert isinstance(store, SqliteResultStore)

    def test_url_builds_net_client(self):
        store = from_url("net://cachehost:4070")
        assert isinstance(store, NetResultStore)
        assert (store.host, store.port) == ("cachehost", 4070)

    def test_net_url_without_address_rejected(self):
        with pytest.raises(
            StoreError, match=r"missing an address.*net://HOST:PORT"
        ):
            from_url("net://")

    def test_net_url_with_bad_port_rejected(self):
        with pytest.raises(
            StoreError, match=r"malformed net store port.*accepted forms"
        ):
            from_url("net://host:not-a-port")

    def test_net_url_without_port_rejected(self):
        with pytest.raises(StoreError, match=r"accepted forms"):
            from_url("net://hostonly")

    def test_bare_net_backend_name_rejected(self):
        with pytest.raises(
            StoreError, match=r"needs a server address.*net://HOST:PORT"
        ):
            make_store("net")


# ----------------------------------------------------------------------
# Filesystem backend mechanics: durability and the prune/get race
# ----------------------------------------------------------------------


class TestFileStoreDurability:
    def test_put_fsyncs_tmp_before_rename_and_dir_after(
        self, tmp_path, monkeypatch
    ):
        """The write protocol is write → fsync(tmp) → rename → fsync(dir)."""
        store = FileResultStore(tmp_path / "store")
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            events.append("rename")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        job = _job()
        store.put(job, execute_job(job))
        assert "fsync" in events[: events.index("rename")], (
            "temp file must be fsynced before the rename publishes it"
        )
        assert "fsync" in events[events.index("rename") + 1:], (
            "directory entry must be fsynced after the rename"
        )

    def test_crash_mid_put_leaves_only_sweepable_debris(self, tmp_path):
        store = FileResultStore(tmp_path / "store")
        job = _job()
        with pytest.raises(StoreError):
            store.simulate_crash_mid_put(job, execute_job(job))
        debris = list((tmp_path / "store").glob("v*/*/.*.tmp"))
        assert len(debris) == 1  # the torn temp file a real crash strands
        assert store.get(job) is None  # never visible as an entry
        assert store.stats().entries == 0
        # clear() sweeps crash debris immediately.
        store.clear()
        assert not list((tmp_path / "store").glob("v*/*/.*.tmp"))

    def test_put_survives_concurrent_bucket_removal(self, tmp_path, monkeypatch):
        """A prune rmdir'ing the fan-out bucket mid-put is retried."""
        store = FileResultStore(tmp_path / "store")
        job = _job()
        real_replace = os.replace
        raised = {"count": 0}

        def racy_replace(src, dst):
            if raised["count"] == 0:
                raised["count"] += 1
                raise FileNotFoundError(
                    errno.ENOENT, "bucket swept by concurrent prune", dst
                )
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", racy_replace)
        path = store.put(job, execute_job(job))
        assert raised["count"] == 1
        assert path.is_file()
        assert store.get(job) is not None

    def test_put_raises_store_error_when_race_never_resolves(
        self, tmp_path, monkeypatch
    ):
        store = FileResultStore(tmp_path / "store")

        def always_gone(src, dst):
            raise FileNotFoundError(errno.ENOENT, "gone", dst)

        monkeypatch.setattr(os, "replace", always_gone)
        with pytest.raises(StoreError):
            store.put(_job(), execute_job(_job()))

    def test_get_racing_prune_is_a_clean_miss(self, tmp_path, monkeypatch):
        """An entry unlinked between the lookup and the read is a miss."""
        from pathlib import Path

        store = FileResultStore(tmp_path / "store")
        job = _job()
        path = store.put(job, execute_job(job))

        real_read_bytes = Path.read_bytes

        def pruned_read_bytes(self, *args, **kwargs):
            if self == path:
                # The concurrent prune wins the race: entry is gone.
                self.unlink(missing_ok=True)
            return real_read_bytes(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_bytes", pruned_read_bytes)
        assert store.get(job) is None  # miss, not an exception
        assert store.stats().quarantined == 0  # nothing got quarantined

    def test_get_racing_prune_enoent_oserror_is_a_clean_miss(
        self, tmp_path, monkeypatch
    ):
        from pathlib import Path

        store = FileResultStore(tmp_path / "store")
        job = _job()
        path = store.put(job, execute_job(job))

        def enoent_read_bytes(self, *args, **kwargs):
            if self == path:
                raise OSError(errno.ENOENT, "pruned mid-open", str(self))
            return Path.read_bytes(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_bytes", enoent_read_bytes)
        assert store.get(job) is None

    def test_quarantine_keeps_reason_sidecar(self, tmp_path):
        store = FileResultStore(tmp_path / "store")
        job = _job()
        store.put(job, execute_job(job))
        store.corrupt_entry(job.key(), mode="semantic")
        assert store.get(job) is None
        sidecars = list(store.quarantine_dir.glob("*.reason"))
        assert len(sidecars) == 1
        assert "exceed" in sidecars[0].read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# Sqlite backend mechanics: busy retries and fork safety
# ----------------------------------------------------------------------


class TestSqliteStore:
    def test_injected_busy_is_retried_and_counted(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        job = _job()
        store.put(job, execute_job(job))
        store.inject_busy_once(times=2)
        assert store.get(job) is not None  # retried through the busy spell
        assert store.counters.busy_retries == 2

    def test_busy_beyond_budget_degrades_to_store_error(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store", busy_retries=2)
        store.inject_busy_once(times=10)
        with pytest.raises(StoreError):
            store.get(_job())
        assert store.counters.busy_retries == 2

    def test_non_busy_sqlite_error_is_store_error(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        job = _job()
        store.put(job, execute_job(job))
        store._connection().execute("DROP TABLE entries")
        with pytest.raises(StoreError):
            store.get(job)

    def test_single_file_layout(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        job = _job()
        assert store.put(job, execute_job(job)) == job.key()
        files = {
            p.name
            for p in (tmp_path / "store").iterdir()
            if not p.name.startswith("store.sqlite-")  # WAL side files
        }
        assert files == {"store.sqlite"}

    def test_quarantine_rows_record_reason(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        job = _job()
        store.put(job, execute_job(job))
        store.corrupt_entry(job.key(), mode="truncate")
        assert store.get(job) is None
        rows = list(store.quarantined_entries())
        assert rows and rows[0][0] == job.key()
        assert "JSON" in rows[0][1]

    def test_prune_age_uses_created_column(self, tmp_path):
        store = SqliteResultStore(tmp_path / "store")
        job = _job()
        store.put(job, execute_job(job))
        store._connection().execute(
            "UPDATE entries SET created = ?", (time.time() - 10 * 86400,)
        )
        assert store.prune(max_age_days=5) == 1
        assert store.stats().entries == 0

    def test_payloads_match_fs_codec(self, tmp_path):
        """Both backends persist the identical (v2-packed) entry payload."""
        from repro.exec.stores.base import ENTRY_MAGIC, inflate_entry

        fs_store = FileResultStore(tmp_path / "fs")
        sq_store = SqliteResultStore(tmp_path / "sq")
        job = _job()
        result = execute_job(job)
        path = fs_store.put(job, result)
        sq_store.put(job, result)
        fs_raw = path.read_bytes()
        row = sq_store._connection().execute(
            "SELECT payload FROM entries WHERE key = ?", (job.key(),)
        ).fetchone()
        assert fs_raw.startswith(ENTRY_MAGIC)
        assert bytes(row[0]).startswith(ENTRY_MAGIC)
        fs_payload = json.loads(inflate_entry(fs_raw))
        sq_payload = json.loads(inflate_entry(bytes(row[0])))
        fs_payload.pop("created")
        sq_payload.pop("created")
        assert fs_payload == sq_payload


class TestEntryCodec:
    """The shared v2 entry codec: pack, read-back, and compat."""

    def test_round_trip(self):
        from repro.exec.stores.base import decode_entry, encode_entry

        job = _job()
        result = execute_job(job)
        payload = encode_entry(job, result)
        decoded, reason = decode_entry(payload, job)
        assert reason is None
        assert decoded is not None
        assert decoded.to_dict() == result.to_dict()

    def test_v1_plain_json_reads_back(self):
        """Entries written before the codec change decode transparently."""
        from repro.exec.stores.base import decode_entry
        from repro.exec.job import ENGINE_VERSION

        job = _job()
        result = execute_job(job)
        v1_text = json.dumps(
            {
                "engine_version": ENGINE_VERSION,
                "created": time.time(),
                "job": job.to_dict(),
                "result": result.to_dict(),
            },
            sort_keys=True,
        )
        for flavor in (v1_text, v1_text.encode("utf-8")):
            decoded, reason = decode_entry(flavor, job)
            assert reason is None
            assert decoded is not None
            assert decoded.to_dict() == result.to_dict()

    def test_pack_is_smaller_than_logical(self):
        from repro.exec.stores.base import (
            ENTRY_MAGIC,
            encode_entry,
            entry_logical_size,
            inflate_entry,
        )

        job = _job()
        payload = encode_entry(job, execute_job(job))
        assert payload.startswith(ENTRY_MAGIC)
        logical = entry_logical_size(payload)
        assert logical == len(inflate_entry(payload))
        assert len(payload) < logical

    def test_logical_size_of_v1_text_is_its_own_length(self):
        from repro.exec.stores.base import entry_logical_size

        assert entry_logical_size('{"a": 1}') == 8
        assert entry_logical_size(b'{"a": 1}') == 8

    def test_torn_pack_quarantine_reason(self):
        from repro.exec.stores.base import decode_entry, encode_entry

        job = _job()
        payload = encode_entry(job, execute_job(job))
        torn = payload[: len(payload) // 2]
        decoded, reason = decode_entry(torn, job)
        assert decoded is None
        assert reason == "unreadable or corrupt JSON (torn v2 pack)"

    def test_torn_pack_quarantines_on_disk(self, tmp_path):
        """A half-written v2 file is a miss + quarantine, not a crash."""
        store = FileResultStore(tmp_path / "store")
        job = _job()
        path = store.put(job, execute_job(job))
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert store.get(job) is None
        assert len(list(store.quarantined_entries())) == 1
