"""Multiprocess stress tests for the result store and single-flight.

True cross-process concurrency (no mocks): several OS processes hammer
one store with writes, validated reads, and maintenance at once, on
every backend — for ``net``, the forked workers are genuine TCP
clients of one live :class:`StoreServer` in the parent process.  The
invariants:

* no lost entries — every written key is readable and valid at the end;
* no torn reads — a concurrent reader sees a valid entry or a miss,
  never garbage (quarantine stays empty);
* no orphaned leases once every process exits cleanly;
* **single-flight** — N schedulers racing over the same cold job set
  compute each job exactly once, total, across all processes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.exec import Scheduler, SimJob, execute_job
from repro.exec.stores import BACKENDS, FileResultStore, StoreServer

ACCESSES = 2_000
SEEDS = range(6)

_mp = multiprocessing.get_context("fork")
pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="stress tests need the fork start method",
)


@pytest.fixture(params=sorted(BACKENDS))
def stress_target(request, tmp_path):
    """``(backend, target)`` for each backend, forked-worker ready.

    ``fs``/``sqlite`` get a pre-created tmpdir root.  ``net`` gets one
    live fs-backed :class:`StoreServer` in the parent process; workers
    receive its ``host:port`` address and contend over real TCP.
    """
    backend = request.param
    base = tmp_path / "store"
    if backend == "net":
        server = StoreServer(FileResultStore(base), port=0)
        server.start()
        host, port = server.address
        yield backend, f"{host}:{port}"
        server.close()
        return
    # Pre-create the store root (and sqlite schema) before forking, so
    # workers never race the one-time initialization.
    BACKENDS[backend](base).stats()
    yield backend, base


def _jobs():
    return [
        SimJob.single("hmmer_like", "lru", ACCESSES, seed=seed)
        for seed in SEEDS
    ]


# ----------------------------------------------------------------------
# Worker bodies (run in forked children)
# ----------------------------------------------------------------------


def _writer(backend, base, barrier):
    store = BACKENDS[backend](base)
    barrier.wait()
    for job in _jobs():
        store.put(job, execute_job(job))


def _reader(backend, base, barrier, rounds=40):
    store = BACKENDS[backend](base)
    jobs = _jobs()
    barrier.wait()
    for _round in range(rounds):
        for job in jobs:
            result = store.get(job)  # valid or None, never torn
            if result is not None:
                assert result.cores, "served a result with no cores"


def _pruner(backend, base, barrier, rounds=15):
    store = BACKENDS[backend](base)
    barrier.wait()
    for _round in range(rounds):
        store.prune(keep=len(list(SEEDS)))
        time.sleep(0.01)


class _CountingExecute:
    """``execute_job`` that leaves one marker file per real computation.

    The sleep widens the race window so contending schedulers genuinely
    overlap; markers are ``O_EXCL``-unique per invocation, so counting
    them counts computations across every process.
    """

    def __init__(self, marker_dir) -> None:
        self.marker_dir = str(marker_dir)
        self._seq = 0

    def __call__(self, job):
        self._seq += 1
        marker = os.path.join(
            self.marker_dir, f"{job.key()}.{os.getpid()}.{self._seq}"
        )
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        time.sleep(0.05)
        return execute_job(job)


def _singleflight_scheduler(backend, base, marker_dir, report_dir, barrier):
    store = BACKENDS[backend](base)
    scheduler = Scheduler(
        jobs=1,
        store=store,
        execute=_CountingExecute(marker_dir),
        backoff_base=0.02,
        lease_ttl=10.0,
    )
    barrier.wait()
    results = scheduler.run(_jobs())
    assert all(result is not None for result in results)
    report = scheduler.last_report
    with open(
        os.path.join(report_dir, f"{os.getpid()}.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {
                "completed": report.completed,
                "cached": report.cached,
                "failed": report.failed,
                "lease_contentions": report.lease_contentions,
            },
            handle,
        )


def _run_all(processes, timeout=120):
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout)
    alive = [p for p in processes if p.is_alive()]
    for process in alive:
        process.terminate()
    assert not alive, "stress worker(s) hung"
    assert all(p.exitcode == 0 for p in processes), (
        f"worker exit codes: {[p.exitcode for p in processes]}"
    )


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------


def test_concurrent_writers_readers_pruners(stress_target):
    backend, base = stress_target
    barrier = _mp.Barrier(5)
    processes = [
        _mp.Process(target=_writer, args=(backend, base, barrier)),
        _mp.Process(target=_writer, args=(backend, base, barrier)),
        _mp.Process(target=_reader, args=(backend, base, barrier)),
        _mp.Process(target=_reader, args=(backend, base, barrier)),
        _mp.Process(target=_pruner, args=(backend, base, barrier)),
    ]
    _run_all(processes)

    store = BACKENDS[backend](base)
    # No lost entries: every key both writers raced over is present and
    # round-trips validation.
    for job in _jobs():
        result = store.get(job)
        assert result is not None, f"lost entry for seed {job.seed}"
        assert result == execute_job(job)
    # No torn reads ever surfaced: nothing was quarantined.
    assert store.stats().quarantined == 0
    # No leases linger after clean exits.
    assert store.active_leases() == []


def test_singleflight_computes_each_job_exactly_once(stress_target, tmp_path):
    backend, base = stress_target
    marker_dir = tmp_path / "markers"
    report_dir = tmp_path / "reports"
    marker_dir.mkdir()
    report_dir.mkdir()

    contenders = 4
    barrier = _mp.Barrier(contenders)
    processes = [
        _mp.Process(
            target=_singleflight_scheduler,
            args=(backend, base, marker_dir, report_dir, barrier),
        )
        for _ in range(contenders)
    ]
    _run_all(processes)

    jobs = _jobs()
    markers = list(marker_dir.iterdir())
    assert len(markers) == len(jobs), (
        f"{len(markers)} computations for {len(jobs)} unique jobs — "
        "single-flight must compute each job exactly once across processes"
    )
    reports = [
        json.loads(path.read_text(encoding="utf-8"))
        for path in report_dir.iterdir()
    ]
    assert len(reports) == contenders
    for report in reports:
        assert report["failed"] == 0
        assert report["completed"] + report["cached"] == len(jobs)
    total_completed = sum(report["completed"] for report in reports)
    assert total_completed == len(jobs)
    # The contention the losers experienced is what the counters surface.
    assert sum(report["lease_contentions"] for report in reports) > 0

    # Nothing left behind: every lease was released.
    store = BACKENDS[backend](base)
    assert store.active_leases() == []
    assert store.stats().entries == len(jobs)
