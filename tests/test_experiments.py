"""Tests for the experiment infrastructure and cheap drivers.

The heavyweight figure drivers are exercised end-to-end by the benchmark
harness (``benchmarks/``); here we cover the shared machinery and the
drivers that run instantly (tables), plus tiny-scale smoke runs.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ExperimentError
from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.base import ExperimentResult, render_table, scaled_accesses
from repro.experiments.harness import mix_weighted_speedups, multicore_comparison


class TestScaledAccesses:
    def test_default_passthrough(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled_accesses(100_000) == 100_000

    def test_scaling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scaled_accesses(100_000) == 50_000

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert scaled_accesses(100_000) == 10_000

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "big")
        with pytest.raises(ExperimentError):
            scaled_accesses(100_000)

    def test_rejects_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ExperimentError):
            scaled_accesses(100_000)


class TestRenderTable:
    def test_empty(self):
        assert render_table([]) == "(no rows)"

    def test_alignment_and_content(self):
        text = render_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "22" in lines[3]

    def test_missing_cells(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text


class TestExperimentResult:
    def test_column_helpers(self):
        result = ExperimentResult("x", "t", [{"a": 1}, {"a": 2, "b": 3}])
        assert result.column_names() == ["a", "b"]
        assert result.column("a") == [1, 2]
        assert result.column("b") == [None, 3]

    def test_to_text_includes_everything(self):
        result = ExperimentResult(
            "x", "title", [{"a": 1}], notes="note", summary={"m": 1.5}
        )
        text = result.to_text()
        assert "x: title" in text
        assert "note" in text
        assert "m=1.5" in text


class TestRegistry:
    def test_ids_cover_design_doc(self):
        ids = experiment_ids()
        for expected in ("table1", "table2", "fig1", "fig2", "fig3", "fig4",
                         "fig5", "fig6", "fig7", "fig8", "fig9"):
            assert expected in ids

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_registry_callables(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestInstantDrivers:
    def test_table1(self):
        result = run_experiment("table1")
        assert len(result.rows) == 4
        assert result.rows[0]["cores"] == 1

    def test_table2(self):
        result = run_experiment("table2")
        assert all(row["pct_of_llc"] < 5 for row in result.rows)


class TestHarness:
    def test_mix_weighted_speedups_smoke(self):
        speedups = mix_weighted_speedups("mix2_9", ["lru"], accesses=15_000)
        assert 0 < speedups["lru"] <= 2.3

    def test_multicore_comparison_requires_baseline(self):
        with pytest.raises(ValueError):
            multicore_comparison(2, ["nucache"], accesses=15_000)

    def test_multicore_comparison_rows(self):
        rows = multicore_comparison(2, ["lru", "dip"], accesses=12_000)
        assert rows[-1]["mix"] == "gmean"
        assert "dip_vs_lru" in rows[-1]
        # one row per mix plus the gmean row
        from repro.workloads.mixes import mix_names

        assert len(rows) == len(mix_names(2)) + 1
