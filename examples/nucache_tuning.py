#!/usr/bin/env python
"""Tune NUcache's knobs on one workload.

Sweeps the three design parameters the paper's sensitivity study covers
— the MainWays/DeliWays split, the selection epoch length, and the PC
selection mechanism — and prints IPC normalized to the 16-way LRU
baseline for each point.

Usage::

    python examples/nucache_tuning.py [benchmark_name]
"""

from __future__ import annotations

import sys

from repro import run_single


def sweep(name: str, accesses: int) -> None:
    baseline = run_single(name, "lru", accesses).cores[0].ipc
    print(f"{name}: LRU baseline ipc = {baseline:.4f}\n")

    print("DeliWays split (MainWays + DeliWays = 16):")
    for deli in (0, 2, 4, 6, 8, 10, 12):
        ipc = run_single(name, "nucache", accesses, deli_ways=deli).cores[0].ipc
        bar = "#" * int(40 * ipc / baseline)
        print(f"  D={deli:<3} ipc/lru = {ipc / baseline:6.3f}  {bar}")

    print("\nepoch length (LLC misses):")
    for epoch in (2_500, 5_000, 10_000, 20_000, 40_000):
        ipc = run_single(name, "nucache", accesses, epoch_misses=epoch).cores[0].ipc
        print(f"  E={epoch:<6} ipc/lru = {ipc / baseline:6.3f}")

    print("\nselection mechanism (reduced candidate pool so the oracle runs):")
    for selector in ("greedy", "topk", "oracle"):
        ipc = run_single(
            name, "nucache", accesses,
            selector=selector, num_candidate_pcs=10, max_selected_pcs=5,
        ).cores[0].ipc
        print(f"  {selector:<8} ipc/lru = {ipc / baseline:6.3f}")

    print("\nDeliWay hit handling:")
    for mode in ("fifo", "lru"):
        ipc = run_single(name, "nucache", accesses, deli_replacement=mode).cores[0].ipc
        label = "promote to MainWays" if mode == "fifo" else "refresh in DeliWays"
        print(f"  {mode:<6} ({label:<20}) ipc/lru = {ipc / baseline:6.3f}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "art_like"
    sweep(name, accesses=80_000)


if __name__ == "__main__":
    main()
