#!/usr/bin/env python
"""Build, analyze and simulate your own workload.

Shows the full workload workflow the library supports:

1. define a :class:`BenchmarkSpec` from stream primitives,
2. generate a trace and analyze it with the exact reuse-distance tool
   (to check it really has the behaviour you intended),
3. save/load it in both the native and text interchange formats,
4. run it against several LLC organizations.

Usage::

    python examples/custom_workload.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import BenchmarkSpec, generate_trace
from repro.analysis import analyze, characterize_trace
from repro.common.config import paper_system_config
from repro.sim.engine import MulticoreEngine
from repro.sim.memory import FixedLatencyMemory
from repro.sim.policies import make_llc
from repro.workloads import StreamSpec, Trace, load_text, save_text

KB = 1024
MB = 1024 * KB


def build_spec() -> BenchmarkSpec:
    """A hand-made delinquent benchmark: one hot loop under a stream.

    The loop is sized to overflow the 4096-line LLC once its reuse
    distance is inflated by the stream — exactly the next-use shape
    NUcache captures.  Tweak the numbers and watch fig-3-style results
    move.
    """
    return BenchmarkSpec(
        "my_workload",
        (
            StreamSpec("loop", region_bytes=128 * KB, weight=0.35, num_pcs=1),
            StreamSpec("loop", region_bytes=32 * MB, weight=0.50, num_pcs=2),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.15),
        ),
        instruction_gap=2,
    )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out_dir.mkdir(parents=True, exist_ok=True)

    spec = build_spec()
    trace = generate_trace(spec, 80_000, seed=42)
    print("generated:", trace.describe())

    # --- analyze: does it have the intended shape? ---------------------
    character = characterize_trace(trace)
    print(character.describe())
    profile = analyze(trace.block_addresses(64).tolist())
    print(f"LRU miss ratio at 4096 lines (the LLC): "
          f"{profile.miss_ratio(4096):.2f}  -> should be high")
    print(f"LRU miss ratio at 8192 lines (2x LLC):  "
          f"{profile.miss_ratio(8192):.2f}  -> should drop sharply\n")

    # --- save / reload in both formats ---------------------------------
    npz_path = out_dir / "my_workload.npz"
    txt_path = out_dir / "my_workload.trace"
    trace.save(npz_path)
    save_text(trace.head(1000), txt_path)
    reloaded = Trace.load(npz_path)
    imported = load_text(txt_path)
    print(f"saved {npz_path.name} ({len(reloaded)} accesses) and "
          f"{txt_path.name} ({len(imported)} accesses, text format)\n")

    # --- simulate under several organizations --------------------------
    config = paper_system_config(1)
    print(f"{'policy':<10} {'ipc':>8} {'llc hit':>8}")
    for policy in ("lru", "dip", "ship", "nucache"):
        llc = make_llc(policy, config)
        engine = MulticoreEngine(
            (reloaded,), llc, config,
            FixedLatencyMemory(config.latency.memory), warmup_fraction=0.25,
        )
        core = engine.run().cores[0]
        print(f"{policy:<10} {core.ipc:>8.4f} {core.llc_hit_rate:>8.3f}")


if __name__ == "__main__":
    main()
