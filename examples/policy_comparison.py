#!/usr/bin/env python
"""Compare every shared-LLC organization on one workload.

Runs a benchmark (single-core) or a mix (multicore) under all registered
policies — the classic textbook policies, the insertion/partitioning
baselines of the paper's comparison, and NUcache — and prints a ranking.

Usage::

    python examples/policy_comparison.py                  # art_like, single core
    python examples/policy_comparison.py ammp_like
    python examples/policy_comparison.py --mix mix4_1
"""

from __future__ import annotations

import sys

from repro import alone_ipc, mix_members, policy_names, run_mix, run_single, weighted_speedup


def compare_single(name: str, accesses: int) -> None:
    print(f"single-core {name}, all policies ({accesses} accesses)\n")
    rows = []
    for policy in policy_names():
        core = run_single(name, policy, accesses).cores[0]
        rows.append((core.ipc, policy, core.mpki, core.llc_hit_rate))
    rows.sort(reverse=True)
    print(f"{'policy':<10} {'ipc':>8} {'mpki':>8} {'llc hit':>8}")
    for ipc, policy, mpki, hit in rows:
        print(f"{policy:<10} {ipc:>8.4f} {mpki:>8.2f} {hit:>8.3f}")


def compare_mix(mix_name: str, accesses: int) -> None:
    members = mix_members(mix_name)
    alone = [alone_ipc(name, len(members), accesses) for name in members]
    print(f"mix {mix_name} ({', '.join(members)}), all policies\n")
    rows = []
    for policy in policy_names():
        result = run_mix(mix_name, policy, accesses)
        rows.append((weighted_speedup(result.ipcs, alone), policy))
    rows.sort(reverse=True)
    print(f"{'policy':<10} {'weighted speedup':>18}")
    for speedup, policy in rows:
        print(f"{policy:<10} {speedup:>18.4f}")


def main() -> None:
    accesses = 80_000
    args = sys.argv[1:]
    if args and args[0] == "--mix":
        compare_mix(args[1] if len(args) > 1 else "mix4_1", accesses)
    else:
        compare_single(args[0] if args else "art_like", accesses)


if __name__ == "__main__":
    main()
