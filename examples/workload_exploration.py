#!/usr/bin/env python
"""Explore the synthetic SPEC-like workload substrate.

Walks the benchmark catalog and, for one chosen benchmark, shows the two
properties NUcache exploits:

1. *Delinquent PCs*: how few PCs cause most LLC misses.
2. *Next-Use distances*: how soon after eviction those PCs' lines are
   reused, relative to the DeliWays' capacity.

Usage::

    python examples/workload_exploration.py [benchmark_name]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import benchmark, generate_trace
from repro.common.config import paper_system_config
from repro.experiments.probe import llc_miss_profile, nextuse_profiles
from repro.workloads.spec_like import benchmark_class, benchmark_names


def show_catalog() -> None:
    print("benchmark catalog")
    print("-" * 72)
    for name in benchmark_names():
        trace = generate_trace(benchmark(name), 20_000, seed=1)
        print(f"{name:<18} [{benchmark_class(name):<10}] {trace.describe()}")
    print()


def show_delinquency(name: str, accesses: int) -> None:
    misses = llc_miss_profile(name, accesses)
    total = sum(misses.values())
    print(f"{name}: {total} LLC misses from {len(misses)} distinct PCs")
    if not total:
        print("  (no LLC misses — nothing for NUcache to do here)")
        return
    running = 0
    for rank, (pc, count) in enumerate(misses.most_common(8), start=1):
        running += count
        print(
            f"  #{rank}: pc={pc:#x}  misses={count:6d}  "
            f"cumulative coverage={running / total:.1%}"
        )
    print()


def show_nextuse(name: str, accesses: int) -> None:
    config = paper_system_config(1)
    capacity = config.nucache.deli_ways * config.llc.num_sets
    profiles = nextuse_profiles(name, accesses)
    solo = [
        profile.event_deltas[np.arange(profile.num_events), profile.event_pc]
        for profile in profiles
        if profile.num_events
    ]
    if not solo:
        print(f"{name}: no post-eviction reuses observed")
        return
    distances = np.concatenate(solo)
    print(f"{name}: {len(distances)} post-eviction reuses")
    print(f"  median solo Next-Use distance = {int(np.median(distances))} evictions")
    print(f"  DeliWay capacity (default split) = {capacity} lines")
    print(f"  fraction capturable if that PC alone were selected = "
          f"{np.mean(distances <= capacity):.1%}")
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "art_like"
    accesses = 100_000
    show_catalog()
    show_delinquency(name, accesses)
    show_nextuse(name, accesses)


if __name__ == "__main__":
    main()
