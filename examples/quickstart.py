#!/usr/bin/env python
"""Quickstart: NUcache vs the LRU baseline on one quad-core mix.

Runs the same four-benchmark mix under both shared-LLC organizations,
prints per-core results and the weighted speedup — the paper's headline
metric.  Takes ~15 seconds.

Usage::

    python examples/quickstart.py [mix_name]
"""

from __future__ import annotations

import sys

from repro import alone_ipc, mix_members, run_mix, weighted_speedup


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "mix4_1"
    members = mix_members(mix_name)
    accesses = 100_000

    print(f"mix {mix_name}: {', '.join(members)}")
    print(f"({accesses} accesses per core; shared LLC sized for {len(members)} cores)\n")

    # Alone runs: each benchmark with the whole LLC to itself, under LRU.
    # These are the denominators of weighted speedup.
    alone = [alone_ipc(name, len(members), accesses) for name in members]

    speedups = {}
    for policy in ("lru", "nucache"):
        result = run_mix(mix_name, policy, accesses)
        speedups[policy] = weighted_speedup(result.ipcs, alone)
        print(f"--- {policy} ---")
        for core, name, alone_ipc_value in zip(result.cores, members, alone):
            print(
                f"  core {core.core_id} {name:<18} ipc={core.ipc:.4f} "
                f"(alone {alone_ipc_value:.4f})  mpki={core.mpki:6.2f}  "
                f"llc_hit={core.llc_hit_rate:.3f}"
            )
        print(f"  weighted speedup = {speedups[policy]:.4f}")
        if result.llc_extra:
            print(f"  DeliWay hits = {result.llc_extra['deli_hits']:.0f}")
        print()

    improvement = speedups["nucache"] / speedups["lru"] - 1.0
    print(f"NUcache improves weighted speedup by {improvement:+.1%} over LRU")
    print("(the paper reports +30% on average across its quad-core mixes)")


if __name__ == "__main__":
    main()
